// Package cache models the first-level data caches whose interaction with
// addressing motivates much of the paper (Section 2.2):
//
//   - VirtualCache: a virtually indexed, virtually tagged (VIVT) cache.
//     The fastest organization — no translation before the access — but on
//     multiple-address-space systems it suffers homonyms (same VA, different
//     data per space) and synonyms (same data under different VAs). A single
//     address space eliminates both by construction. The cache optionally
//     extends its tags with an address-space identifier (the conventional
//     homonym fix, which reintroduces synonyms for shared pages) or is
//     flushed on every context switch (the i860 fix).
//
//   - PhysicalCache: a physically indexed, physically tagged (PIPT) cache,
//     immune to both problems but requiring translation before every
//     access.
//
// Caches track line presence, dirtiness, and (at fill time) the physical
// frame behind each line, so experiments can count writebacks, flush costs
// and resident synonym/homonym duplicates.
package cache

import (
	"math/bits"

	"repro/internal/addr"
	"repro/internal/assoc"
	"repro/internal/stats"
)

// Config describes a cache's geometry.
type Config struct {
	// LineShift is log2 of the line size in bytes (5 → 32-byte lines).
	LineShift uint
	// Assoc is the geometry of the underlying structure: Sets × Ways
	// lines in total.
	Assoc assoc.Config
	// ASIDTags, for VirtualCache only, extends every virtual tag with the
	// referencing address space's identifier so homonyms can coexist.
	ASIDTags bool
}

// DefaultConfig returns a 64 KB, 2-way, 32-byte-line configuration.
func DefaultConfig() Config {
	return Config{
		LineShift: 5,
		Assoc:     assoc.Config{Sets: 1024, Ways: 2, Policy: assoc.LRU},
	}
}

// lineKey identifies a resident line: the line number in whichever address
// space the cache is indexed by, plus the tag-extension space (ASID) when
// enabled.
type lineKey struct {
	line  uint64
	space addr.ASID
}

// lineState records what the cache knows about a resident line.
type lineState struct {
	dirty bool
	// pfn is the physical frame the line was filled from; it identifies
	// the physical data for synonym detection and writeback targets.
	pfn addr.PFN
}

// VirtualCache is the VIVT data cache.
type VirtualCache struct {
	cfg Config
	c   *assoc.Cache[lineKey, lineState]
	// nDirty tracks resident dirty lines so FlushAll reports its
	// writeback count without scanning the structure.
	nDirty int

	nHit       stats.Handle
	nMiss      stats.Handle
	nFill      stats.Handle
	nWriteback stats.Handle
	nFlushLine stats.Handle
	nFlushWB   stats.Handle
}

// NewVirtual creates a VIVT cache counting under prefix. Counter names
// resolve to handles once here, keeping the per-access path free of name
// hashing.
func NewVirtual(cfg Config, ctrs *stats.Counters, prefix string) *VirtualCache {
	v := &VirtualCache{cfg: cfg}
	v.c = assoc.New[lineKey, lineState](cfg.Assoc, func(k lineKey) uint64 {
		// Virtually indexed: the set is chosen by VA line-number bits
		// only, regardless of ASID tag extension — this is why ASID tags
		// do not prevent synonym duplication across sets.
		return k.line
	})
	v.nHit = ctrs.Handle(prefix + ".hit")
	v.nMiss = ctrs.Handle(prefix + ".miss")
	v.nFill = ctrs.Handle(prefix + ".fill")
	v.nWriteback = ctrs.Handle(prefix + ".writeback")
	v.nFlushLine = ctrs.Handle(prefix + ".flushed_lines")
	v.nFlushWB = ctrs.Handle(prefix + ".flush_writebacks")
	return v
}

func (v *VirtualCache) key(space addr.ASID, va addr.VA) lineKey {
	k := lineKey{line: uint64(va) >> v.cfg.LineShift}
	if v.cfg.ASIDTags {
		k.space = space
	}
	return k
}

// LineShift returns log2 of the line size.
func (v *VirtualCache) LineShift() uint { return v.cfg.LineShift }

// LinesPerPage returns the number of cache lines covering one page of the
// given geometry.
func (v *VirtualCache) LinesPerPage(geo addr.Geometry) uint64 {
	return geo.PageSize() >> v.cfg.LineShift
}

// Access probes the cache for va in space (space is ignored unless the
// cache was built with ASIDTags). On a store hit the line is marked dirty.
// A miss returns false; the caller translates and calls Fill.
func (v *VirtualCache) Access(space addr.ASID, va addr.VA, store bool) bool {
	k := v.key(space, va)
	st, ok := v.c.Lookup(k)
	if !ok {
		v.nMiss.Inc()
		return false
	}
	if store && !st.dirty {
		st.dirty = true
		v.c.Update(k, st)
		v.nDirty++
	}
	v.nHit.Inc()
	return true
}

// ProbeLine locates the live line for va without any replacement or
// counter side effects, for later replay with ReplayHit. ok is false on
// a miss.
func (v *VirtualCache) ProbeLine(space addr.ASID, va addr.VA) (set, way int, ok bool) {
	return v.c.Locate(v.key(space, va))
}

// ReplayHit replays the exact side effects of an Access hit on the line
// previously located by ProbeLine: the LRU touch, the conditional dirty
// transition on a store, and the hit counter. The slot must still hold
// the line for va (the caller validates with ProbeLine in the same
// mutation-free window).
func (v *VirtualCache) ReplayHit(set, way int, space addr.ASID, va addr.VA, store bool) {
	k := v.key(space, va)
	st, _ := v.c.PeekAt(set, way, k)
	v.c.TouchAt(set, way)
	if store && !st.dirty {
		st.dirty = true
		v.c.UpdateAt(set, way, st)
		v.nDirty++
	}
	v.nHit.Inc()
}

// Fill installs the line for va after a miss, recording the physical frame
// it came from. It returns true if a dirty victim had to be written back —
// on the PLB machine, a writeback needs a translation, so the machine
// charges an off-chip TLB probe for it (Section 3.2.1).
func (v *VirtualCache) Fill(space addr.ASID, va addr.VA, pfn addr.PFN, store bool) (wroteBack bool) {
	k := v.key(space, va)
	_, victim, evicted := v.c.Insert(k, lineState{dirty: store, pfn: pfn})
	v.nFill.Inc()
	if store {
		v.nDirty++
	}
	if evicted && victim.dirty {
		v.nDirty--
		v.nWriteback.Inc()
		return true
	}
	return false
}

// Resident reports whether the line for va is resident (no replacement
// side effects).
func (v *VirtualCache) Resident(space addr.ASID, va addr.VA) bool {
	_, ok := v.c.Peek(v.key(space, va))
	return ok
}

// FlushPage removes every resident line of the page holding va (matching
// any space tag), as a sequence of per-line flush instructions. It returns
// the number of lines flushed and how many were dirty (requiring
// writeback). Used when unmapping pages (Section 4.1.3).
func (v *VirtualCache) FlushPage(va addr.VA, geo addr.Geometry) (flushed, dirty int) {
	firstLine := uint64(geo.Base(geo.PageNumber(va))) >> v.cfg.LineShift
	lastLine := firstLine + v.LinesPerPage(geo)
	removed, _ := v.c.PurgeIf(func(k lineKey, st lineState) bool {
		if k.line >= firstLine && k.line < lastLine {
			if st.dirty {
				dirty++
			}
			return true
		}
		return false
	})
	flushed = removed
	v.nDirty -= dirty
	v.nFlushLine.Add(uint64(flushed))
	v.nFlushWB.Add(uint64(dirty))
	return flushed, dirty
}

// FlushAll empties the cache (the context-switch flush of systems without
// ASID tags), returning lines flushed and dirty writebacks. Both counts
// are tracked incrementally, so the flush itself is O(1).
func (v *VirtualCache) FlushAll() (flushed, dirty int) {
	dirty = v.nDirty
	v.nDirty = 0
	flushed = v.c.PurgeAll()
	v.nFlushLine.Add(uint64(flushed))
	v.nFlushWB.Add(uint64(dirty))
	return flushed, dirty
}

// ForEachLine visits the first virtual address of every resident line
// in unspecified order; return false from fn to stop early. Oracle
// inspection hook.
func (v *VirtualCache) ForEachLine(fn func(va addr.VA) bool) {
	v.c.ForEach(func(k lineKey, _ lineState) bool {
		return fn(addr.VA(k.line << v.cfg.LineShift))
	})
}

// Len returns the number of resident lines.
func (v *VirtualCache) Len() int { return v.c.Len() }

// Capacity returns the line capacity.
func (v *VirtualCache) Capacity() int { return v.c.Capacity() }

// SynonymLines counts resident lines whose physical data is simultaneously
// resident under another key — the synonym duplication of Section 2.2.
// On a true single address space system this is always zero. geo is the
// machine's translation page geometry: the line-in-page offset depends on
// the page size, so a super-page machine must not be counted with
// base-page arithmetic (offsets in the upper parts of a large page would
// alias and be miscounted as synonyms).
func (v *VirtualCache) SynonymLines(geo addr.Geometry) int {
	type phys struct {
		pfn    addr.PFN
		offset uint64
	}
	// A physical line is its frame plus its line-in-page offset. The
	// offset is the low bits of the virtual line number, which is exact
	// for page-aligned sharing (the only kind the kernel creates).
	byPhys := make(map[phys]int)
	linesPerPage := v.LinesPerPage(geo)
	v.c.ForEach(func(k lineKey, st lineState) bool {
		byPhys[phys{pfn: st.pfn, offset: k.line % linesPerPage}]++
		return true
	})
	n := 0
	for _, c := range byPhys {
		if c > 1 {
			n += c
		}
	}
	return n
}

// IncoherentLines counts physical lines resident under multiple keys where
// at least one copy is dirty: the write-coherence hazard synonyms create.
// geo is the machine's translation page geometry (see SynonymLines).
func (v *VirtualCache) IncoherentLines(geo addr.Geometry) int {
	type phys struct {
		pfn    addr.PFN
		offset uint64
	}
	type info struct {
		count int
		dirty int
	}
	byPhys := make(map[phys]*info)
	linesPerPage := v.LinesPerPage(geo)
	v.c.ForEach(func(k lineKey, st lineState) bool {
		p := phys{pfn: st.pfn, offset: k.line % linesPerPage}
		i := byPhys[p]
		if i == nil {
			i = &info{}
			byPhys[p] = i
		}
		i.count++
		if st.dirty {
			i.dirty++
		}
		return true
	})
	n := 0
	for _, i := range byPhys {
		if i.count > 1 && i.dirty > 0 {
			n++
		}
	}
	return n
}

// ValidVIPT reports whether the configuration can be used virtually
// indexed, physically tagged: the set-index and line-offset bits must fit
// inside the page offset, so indexing needs no translation and a physical
// line has exactly one possible location — no synonyms, no homonyms.
// This is the cache-size restriction the paper's footnote 3 refers to:
// a VIPT cache grows only by adding associativity.
func ValidVIPT(cfg Config, geo addr.Geometry) bool {
	// Index bits are ceil(log2(Sets)): a non-power-of-two set count still
	// needs enough bits to address every set, so rounding down would
	// validate geometries whose index spills into translated bits.
	indexBits := uint(0)
	if cfg.Assoc.Sets > 1 {
		indexBits = uint(bits.Len(uint(cfg.Assoc.Sets - 1)))
	}
	return cfg.LineShift+indexBits <= geo.Shift()
}

// PhysicalCache is the PIPT data cache: translation must precede every
// access, so the machine charges a TLB lookup on the critical path.
// With a VIPT-valid geometry (ValidVIPT) it equally models a virtually
// indexed, physically tagged cache, whose indexing starts before
// translation completes.
type PhysicalCache struct {
	cfg Config
	c   *assoc.Cache[uint64, lineState]

	nHit       stats.Handle
	nMiss      stats.Handle
	nFill      stats.Handle
	nWriteback stats.Handle
	nFlushLine stats.Handle
	nFlushWB   stats.Handle
}

// NewPhysical creates a PIPT cache counting under prefix.
func NewPhysical(cfg Config, ctrs *stats.Counters, prefix string) *PhysicalCache {
	p := &PhysicalCache{cfg: cfg}
	p.c = assoc.New[uint64, lineState](cfg.Assoc, func(line uint64) uint64 { return line })
	p.nHit = ctrs.Handle(prefix + ".hit")
	p.nMiss = ctrs.Handle(prefix + ".miss")
	p.nFill = ctrs.Handle(prefix + ".fill")
	p.nWriteback = ctrs.Handle(prefix + ".writeback")
	p.nFlushLine = ctrs.Handle(prefix + ".flushed_lines")
	p.nFlushWB = ctrs.Handle(prefix + ".flush_writebacks")
	return p
}

// Access probes the cache by physical address.
func (p *PhysicalCache) Access(pa addr.PA, store bool) bool {
	line := uint64(pa) >> p.cfg.LineShift
	st, ok := p.c.Lookup(line)
	if !ok {
		p.nMiss.Inc()
		return false
	}
	if store && !st.dirty {
		st.dirty = true
		p.c.Update(line, st)
	}
	p.nHit.Inc()
	return true
}

// ProbeLine locates the live line for pa without any replacement or
// counter side effects, for later replay with ReplayHit.
func (p *PhysicalCache) ProbeLine(pa addr.PA) (set, way int, ok bool) {
	return p.c.Locate(uint64(pa) >> p.cfg.LineShift)
}

// ReplayHit replays the exact side effects of an Access hit on the line
// previously located by ProbeLine (see VirtualCache.ReplayHit).
func (p *PhysicalCache) ReplayHit(set, way int, pa addr.PA, store bool) {
	line := uint64(pa) >> p.cfg.LineShift
	st, _ := p.c.PeekAt(set, way, line)
	p.c.TouchAt(set, way)
	if store && !st.dirty {
		st.dirty = true
		p.c.UpdateAt(set, way, st)
	}
	p.nHit.Inc()
}

// Fill installs the line for pa after a miss.
func (p *PhysicalCache) Fill(pa addr.PA, store bool) (wroteBack bool) {
	line := uint64(pa) >> p.cfg.LineShift
	_, victim, evicted := p.c.Insert(line, lineState{dirty: store})
	p.nFill.Inc()
	if evicted && victim.dirty {
		p.nWriteback.Inc()
		return true
	}
	return false
}

// FlushFrame removes every resident line of the physical frame, returning
// lines flushed and dirty writebacks.
func (p *PhysicalCache) FlushFrame(pfn addr.PFN, geo addr.Geometry) (flushed, dirty int) {
	first := (uint64(pfn) << geo.Shift()) >> p.cfg.LineShift
	last := first + (geo.PageSize() >> p.cfg.LineShift)
	removed, _ := p.c.PurgeIf(func(line uint64, st lineState) bool {
		if line >= first && line < last {
			if st.dirty {
				dirty++
			}
			return true
		}
		return false
	})
	flushed = removed
	p.nFlushLine.Add(uint64(flushed))
	p.nFlushWB.Add(uint64(dirty))
	return flushed, dirty
}

// FlushAll empties the physical cache, returning lines flushed and
// dirty writebacks.
func (p *PhysicalCache) FlushAll() (flushed, dirty int) {
	removed, _ := p.c.PurgeIf(func(_ uint64, st lineState) bool {
		if st.dirty {
			dirty++
		}
		return true
	})
	flushed = removed
	p.nFlushLine.Add(uint64(flushed))
	p.nFlushWB.Add(uint64(dirty))
	return flushed, dirty
}

// Len returns the number of resident lines.
func (p *PhysicalCache) Len() int { return p.c.Len() }

// Capacity returns the line capacity.
func (p *PhysicalCache) Capacity() int { return p.c.Capacity() }
