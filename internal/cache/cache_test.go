package cache

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/assoc"
	"repro/internal/stats"
)

func smallCfg(asidTags bool) Config {
	return Config{
		LineShift: 5, // 32-byte lines
		Assoc:     assoc.Config{Sets: 16, Ways: 2, Policy: assoc.LRU},
		ASIDTags:  asidTags,
	}
}

func TestVirtualAccessMissFillHit(t *testing.T) {
	ctrs := &stats.Counters{}
	v := NewVirtual(smallCfg(false), ctrs, "dc")
	if v.Access(0, 0x1000, false) {
		t.Fatal("hit on empty cache")
	}
	v.Fill(0, 0x1000, 3, false)
	if !v.Access(0, 0x1000, false) {
		t.Fatal("miss after fill")
	}
	// Same line, different byte.
	if !v.Access(0, 0x101f, false) {
		t.Fatal("miss within line")
	}
	// Next line misses.
	if v.Access(0, 0x1020, false) {
		t.Fatal("hit across line boundary")
	}
	if ctrs.Get("dc.hit") != 2 || ctrs.Get("dc.miss") != 2 || ctrs.Get("dc.fill") != 1 {
		t.Fatalf("counters: %v", ctrs.Snapshot())
	}
}

func TestVirtualDirtyWriteback(t *testing.T) {
	ctrs := &stats.Counters{}
	// Direct-mapped, single set: any two distinct lines conflict.
	v := NewVirtual(Config{
		LineShift: 5,
		Assoc:     assoc.Config{Sets: 1, Ways: 1, Policy: assoc.LRU},
	}, ctrs, "dc")
	v.Fill(0, 0x1000, 1, true) // dirty fill
	if wb := v.Fill(0, 0x2000, 2, false); !wb {
		t.Fatal("dirty victim not written back")
	}
	if wb := v.Fill(0, 0x3000, 3, false); wb {
		t.Fatal("clean victim written back")
	}
	if ctrs.Get("dc.writeback") != 1 {
		t.Fatalf("writeback = %d", ctrs.Get("dc.writeback"))
	}
}

func TestStoreHitMarksDirty(t *testing.T) {
	ctrs := &stats.Counters{}
	v := NewVirtual(Config{
		LineShift: 5,
		Assoc:     assoc.Config{Sets: 1, Ways: 1, Policy: assoc.LRU},
	}, ctrs, "dc")
	v.Fill(0, 0x1000, 1, false) // clean fill
	v.Access(0, 0x1000, true)   // store hit dirties it
	if wb := v.Fill(0, 0x2000, 2, false); !wb {
		t.Fatal("line dirtied by store hit not written back")
	}
}

func TestFlushPage(t *testing.T) {
	ctrs := &stats.Counters{}
	v := NewVirtual(Config{
		LineShift: 5,
		Assoc:     assoc.Config{Sets: 256, Ways: 2, Policy: assoc.LRU},
	}, ctrs, "dc")
	geo := addr.BaseGeometry()
	// Fill 4 lines of page 1, one dirty, plus a line of page 2.
	v.Fill(0, 0x1000, 1, false)
	v.Fill(0, 0x1020, 1, true)
	v.Fill(0, 0x1040, 1, false)
	v.Fill(0, 0x1060, 1, false)
	v.Fill(0, 0x2000, 2, true)
	flushed, dirty := v.FlushPage(0x1008, geo)
	if flushed != 4 || dirty != 1 {
		t.Fatalf("FlushPage = %d,%d", flushed, dirty)
	}
	if v.Resident(0, 0x1000) {
		t.Fatal("line survives page flush")
	}
	if !v.Resident(0, 0x2000) {
		t.Fatal("other page's line flushed")
	}
	if ctrs.Get("dc.flushed_lines") != 4 || ctrs.Get("dc.flush_writebacks") != 1 {
		t.Fatalf("counters: %v", ctrs.Snapshot())
	}
}

func TestFlushAll(t *testing.T) {
	ctrs := &stats.Counters{}
	v := NewVirtual(smallCfg(false), ctrs, "dc")
	v.Fill(0, 0x1000, 1, true)
	v.Fill(0, 0x2000, 2, false)
	flushed, dirty := v.FlushAll()
	if flushed != 2 || dirty != 1 {
		t.Fatalf("FlushAll = %d,%d", flushed, dirty)
	}
	if v.Len() != 0 {
		t.Fatal("cache not empty")
	}
}

func TestHomonymsWithoutASIDTags(t *testing.T) {
	// Without ASID tags, two spaces using the same VA for different data
	// collide on one line: the homonym problem. The cache cannot tell
	// them apart — space is ignored — so the second space "hits" on the
	// first space's line (stale data). This is why such systems must
	// flush on switch.
	ctrs := &stats.Counters{}
	v := NewVirtual(smallCfg(false), ctrs, "dc")
	v.Fill(1, 0x1000, 10, false) // space 1, frame 10
	if !v.Access(2, 0x1000, false) {
		t.Fatal("homonym did not alias (expected false hit)")
	}
}

func TestASIDTagsSeparateHomonyms(t *testing.T) {
	ctrs := &stats.Counters{}
	v := NewVirtual(smallCfg(true), ctrs, "dc")
	v.Fill(1, 0x1000, 10, false)
	if v.Access(2, 0x1000, false) {
		t.Fatal("ASID tags failed to separate homonyms")
	}
	v.Fill(2, 0x1000, 20, false)
	if !v.Access(1, 0x1000, false) || !v.Access(2, 0x1000, false) {
		t.Fatal("both homonym lines should be resident")
	}
}

func TestASIDTagsCreateSynonyms(t *testing.T) {
	// With ASID tags, a frame shared between two spaces at the same VA
	// occupies two lines: the synonym problem (Section 2.2). With a
	// dirty copy it is an incoherence hazard.
	ctrs := &stats.Counters{}
	v := NewVirtual(smallCfg(true), ctrs, "dc")
	v.Fill(1, 0x1000, 10, false)
	v.Fill(2, 0x1000, 10, true) // same frame, space 2, dirty
	if n := v.SynonymLines(addr.BaseGeometry()); n != 2 {
		t.Fatalf("SynonymLines = %d, want 2", n)
	}
	if n := v.IncoherentLines(addr.BaseGeometry()); n != 1 {
		t.Fatalf("IncoherentLines = %d, want 1", n)
	}
}

func TestSingleSpaceNoSynonyms(t *testing.T) {
	// A single address space maps each frame at exactly one VA, so no
	// synonyms can arise regardless of how many domains share the data.
	ctrs := &stats.Counters{}
	v := NewVirtual(smallCfg(false), ctrs, "dc")
	v.Fill(0, 0x1000, 10, true)
	v.Fill(0, 0x2000, 20, false)
	v.Fill(0, 0x1020, 10, false) // second line of the shared page
	if n := v.SynonymLines(addr.BaseGeometry()); n != 0 {
		t.Fatalf("SynonymLines = %d, want 0", n)
	}
	if n := v.IncoherentLines(addr.BaseGeometry()); n != 0 {
		t.Fatalf("IncoherentLines = %d, want 0", n)
	}
}

func TestPhysicalCache(t *testing.T) {
	ctrs := &stats.Counters{}
	p := NewPhysical(smallCfg(false), ctrs, "pc")
	pa := addr.PA(0x5000)
	if p.Access(pa, false) {
		t.Fatal("hit on empty cache")
	}
	p.Fill(pa, true)
	if !p.Access(pa, false) {
		t.Fatal("miss after fill")
	}
	if p.Len() != 1 {
		t.Fatalf("Len = %d", p.Len())
	}
	flushed, dirty := p.FlushFrame(5, addr.BaseGeometry())
	if flushed != 1 || dirty != 1 {
		t.Fatalf("FlushFrame = %d,%d", flushed, dirty)
	}
	if p.Access(pa, false) {
		t.Fatal("hit after frame flush")
	}
}

func TestPhysicalCacheWriteback(t *testing.T) {
	ctrs := &stats.Counters{}
	p := NewPhysical(Config{
		LineShift: 5,
		Assoc:     assoc.Config{Sets: 1, Ways: 1, Policy: assoc.LRU},
	}, ctrs, "pc")
	p.Fill(0x1000, true)
	if wb := p.Fill(0x2000, false); !wb {
		t.Fatal("dirty victim not written back")
	}
	if ctrs.Get("pc.writeback") != 1 {
		t.Fatal("writeback not counted")
	}
}

func TestLinesPerPage(t *testing.T) {
	v := NewVirtual(smallCfg(false), &stats.Counters{}, "dc")
	if n := v.LinesPerPage(addr.BaseGeometry()); n != 128 {
		t.Fatalf("LinesPerPage = %d, want 128 (4096/32)", n)
	}
	if v.LineShift() != 5 {
		t.Fatal("LineShift wrong")
	}
	if v.Capacity() != 32 {
		t.Fatalf("Capacity = %d", v.Capacity())
	}
}

func TestValidVIPTRoundsIndexBitsUp(t *testing.T) {
	geo := addr.BaseGeometry() // 4 KB pages: 12 offset bits
	pow2 := Config{LineShift: 5, Assoc: assoc.Config{Sets: 128, Ways: 16, Policy: assoc.LRU}}
	if !ValidVIPT(pow2, geo) {
		t.Fatal("5 line bits + 7 index bits = 12 must fit a 4 KB page offset")
	}
	// A non-power-of-two set count needs ceil(log2(Sets)) index bits: 200
	// sets need 8 bits, so 5+8 = 13 spills into translated bits. Floor
	// rounding (7 bits) wrongly validated this geometry.
	nonPow2 := Config{LineShift: 5, Assoc: assoc.Config{Sets: 200, Ways: 16, Policy: assoc.LRU}}
	if ValidVIPT(nonPow2, geo) {
		t.Fatal("200 sets need 8 index bits; 5+8 > 12 must be rejected")
	}
	if !ValidVIPT(nonPow2, addr.NewGeometry(13)) {
		t.Fatal("200 sets fit an 8 KB page offset (5+8 <= 13)")
	}
	direct := Config{LineShift: 5, Assoc: assoc.Config{Sets: 1, Ways: 16, Policy: assoc.LRU}}
	if !ValidVIPT(direct, geo) {
		t.Fatal("a single-set cache needs no index bits")
	}
}

func TestSynonymLinesSuperPageGeometry(t *testing.T) {
	// Two lines at different offsets inside one 8 KB super-page share a
	// frame but are NOT synonyms: with base-page (4 KB) arithmetic their
	// line-in-page offsets alias mod 128 and were miscounted as such.
	geo := addr.NewGeometry(13)
	v := NewVirtual(smallCfg(true), &stats.Counters{}, "dc")
	v.Fill(1, 0x0000, 10, false)
	v.Fill(1, 0x1000, 10, false) // same super-page frame, 4 KB deeper
	if n := v.SynonymLines(geo); n != 0 {
		t.Fatalf("SynonymLines = %d, want 0 (distinct offsets of one super-page)", n)
	}
	if n := v.IncoherentLines(geo); n != 0 {
		t.Fatalf("IncoherentLines = %d, want 0", n)
	}

	// A real synonym — the same super-page line resident under two address
	// spaces — is still counted, dirty copies still flag incoherence.
	v2 := NewVirtual(smallCfg(true), &stats.Counters{}, "dc")
	v2.Fill(1, 0x1000, 10, false)
	v2.Fill(2, 0x1000, 10, true)
	if n := v2.SynonymLines(geo); n != 2 {
		t.Fatalf("SynonymLines = %d, want 2", n)
	}
	if n := v2.IncoherentLines(geo); n != 1 {
		t.Fatalf("IncoherentLines = %d, want 1", n)
	}
}
