package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table renders aligned plain-text tables for the experiment harness. Rows
// are added left to right; cells are stringified with %v. The zero value is
// not useful; construct with NewTable.
type Table struct {
	title   string
	headers []string
	rows    [][]string
	notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row. Missing cells render empty; extra cells widen the
// table.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// AddNote appends a footnote line printed under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	ncols := len(t.headers)
	for _, r := range t.rows {
		if len(r) > ncols {
			ncols = len(r)
		}
	}
	widths := make([]int, ncols)
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	totalWidth := 0
	for _, wd := range widths {
		totalWidth += wd + 2
	}
	if totalWidth < len(t.title) {
		totalWidth = len(t.title)
	}

	if t.title != "" {
		fmt.Fprintln(w, t.title)
		fmt.Fprintln(w, strings.Repeat("=", totalWidth))
	}
	if len(t.headers) > 0 {
		for i := 0; i < ncols; i++ {
			h := ""
			if i < len(t.headers) {
				h = t.headers[i]
			}
			fmt.Fprintf(w, "%-*s", widths[i]+2, h)
		}
		fmt.Fprintln(w)
		fmt.Fprintln(w, strings.Repeat("-", totalWidth))
	}
	for _, r := range t.rows {
		for i := 0; i < ncols; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			fmt.Fprintf(w, "%-*s", widths[i]+2, c)
		}
		fmt.Fprintln(w)
	}
	for _, n := range t.notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// Ratio formats a/b as a "x.xx×" factor string, guarding division by zero.
func Ratio(a, b uint64) string {
	if b == 0 {
		if a == 0 {
			return "1.00x"
		}
		return "inf"
	}
	return fmt.Sprintf("%.2fx", float64(a)/float64(b))
}

// Pct formats part/whole as a percentage string, guarding division by zero.
func Pct(part, whole uint64) string {
	if whole == 0 {
		return "0.0%"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(whole))
}
