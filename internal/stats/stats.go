// Package stats provides the measurement substrate for the simulator:
// named event counters, cycle accounting against a parameterized cost
// model, simple histograms, and plain-text table rendering for the
// experiment harness.
//
// Every hardware structure (PLB, TLBs, page-group cache, data caches) and
// the kernel increment counters here; experiments read them back to
// tabulate the per-operation costs that the paper's Table 1 describes
// qualitatively.
//
// Counters interns each name once into a dense slot registry. Hot paths
// resolve a Handle at construction time and increment through it — a
// single array add per event, no hashing — while the name-based API
// (Add, Get, Snapshot, Diff, Merge, String) keeps working on top of the
// same registry for experiment code and aggregation points.
package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Counters is a set of named monotonic event counters. The zero value is
// ready to use. Counters is not safe for concurrent use; the simulator is
// single-threaded by design (cycle-accurate interleaving is explicit).
//
// A counter becomes visible (to Names, Snapshot, String, ...) the first
// time it is incremented — including an Add of zero, which materializes
// the name at value 0. Registering a Handle alone does not make a counter
// visible, so structures may pre-resolve every counter they might ever
// bump without polluting output with events that never fired.
type Counters struct {
	idx     map[string]int // name → slot
	names   []string       // slot → name, registration order
	vals    []uint64       // slot → value
	touched []bool         // slot was explicitly Added (even with zero)
}

// Handle is a pre-resolved counter slot: incrementing through a Handle is
// a single array add, with the name→slot hash paid once at resolution.
// Obtain handles with Counters.Handle at construction time. Handles stay
// valid across Reset. The zero Handle is not usable.
type Handle struct {
	c    *Counters
	slot int32
}

// slot interns name, returning its dense index.
func (c *Counters) slot(name string) int {
	if i, ok := c.idx[name]; ok {
		return i
	}
	if c.idx == nil {
		c.idx = make(map[string]int)
	}
	i := len(c.vals)
	c.idx[name] = i
	c.names = append(c.names, name)
	c.vals = append(c.vals, 0)
	c.touched = append(c.touched, false)
	return i
}

// Handle interns name and returns its pre-resolved handle.
func (c *Counters) Handle(name string) Handle {
	return Handle{c: c, slot: int32(c.slot(name))}
}

// Inc increments the counter by one.
func (h Handle) Inc() { h.c.vals[h.slot]++ }

// Add increments the counter by n. Like the name-based Add, a zero n
// still materializes the counter in snapshots and rendered output.
func (h Handle) Add(n uint64) {
	h.c.vals[h.slot] += n
	h.c.touched[h.slot] = true
}

// Get returns the counter's current value.
func (h Handle) Get() uint64 { return h.c.vals[h.slot] }

// Name returns the counter's name.
func (h Handle) Name() string { return h.c.names[h.slot] }

// present reports whether slot i has been incremented (or zero-Added).
func (c *Counters) present(i int) bool { return c.vals[i] != 0 || c.touched[i] }

// Add increments the named counter by n.
func (c *Counters) Add(name string, n uint64) {
	i := c.slot(name)
	c.vals[i] += n
	c.touched[i] = true
}

// Inc increments the named counter by one.
func (c *Counters) Inc(name string) { c.vals[c.slot(name)]++ }

// Get returns the value of the named counter (zero if never incremented).
func (c *Counters) Get(name string) uint64 {
	if i, ok := c.idx[name]; ok {
		return c.vals[i]
	}
	return 0
}

// Reset zeroes all counters. The registry survives, so handles resolved
// before a Reset remain valid afterwards.
func (c *Counters) Reset() {
	for i := range c.vals {
		c.vals[i] = 0
		c.touched[i] = false
	}
}

// Names returns all incremented counter names in sorted order.
func (c *Counters) Names() []string {
	names := make([]string, 0, len(c.names))
	for i, n := range c.names {
		if c.present(i) {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// Snapshot returns a copy of the current counter values.
func (c *Counters) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, len(c.names))
	for i, n := range c.names {
		if c.present(i) {
			out[n] = c.vals[i]
		}
	}
	return out
}

// Diff returns counters holding the difference between c and an earlier
// snapshot (c - before). Counters absent from the snapshot are treated as
// zero there.
func (c *Counters) Diff(before map[string]uint64) *Counters {
	out := &Counters{}
	for i, n := range c.names {
		if !c.present(i) {
			continue
		}
		if d := c.vals[i] - before[n]; d != 0 {
			out.Add(n, d)
		}
	}
	return out
}

// Merge adds all of other's counters into c, iterating other's dense
// slots directly (no intermediate map).
func (c *Counters) Merge(other *Counters) {
	for i, n := range other.names {
		if other.present(i) {
			c.Add(n, other.vals[i])
		}
	}
}

// MergeSnapshot adds a counter snapshot (as returned by Snapshot) into c.
func (c *Counters) MergeSnapshot(snap map[string]uint64) {
	for k, v := range snap {
		c.Add(k, v)
	}
}

// String renders the counters one per line, sorted by name.
func (c *Counters) String() string {
	var b strings.Builder
	for _, name := range c.Names() {
		fmt.Fprintf(&b, "%-40s %12d\n", name, c.Get(name))
	}
	return b.String()
}

// LockedCounters is a mutex-guarded counter set for aggregation points
// shared between goroutines (the parallel experiment runner merges each
// worker's per-run counters here as runs finish). Individual simulator
// structures keep using plain Counters: a simulated machine is
// single-threaded by design, and only whole-run aggregation crosses
// goroutines. Because counter addition is commutative, the merged totals
// are deterministic regardless of merge order.
type LockedCounters struct {
	mu sync.Mutex
	c  Counters
}

// Add increments the named counter by n.
func (l *LockedCounters) Add(name string, n uint64) {
	l.mu.Lock()
	l.c.Add(name, n)
	l.mu.Unlock()
}

// Inc increments the named counter by one.
func (l *LockedCounters) Inc(name string) { l.Add(name, 1) }

// Merge adds all of other's counters into the shared set, slot by slot
// under the lock. other must not be mutated concurrently.
func (l *LockedCounters) Merge(other *Counters) {
	l.mu.Lock()
	l.c.Merge(other)
	l.mu.Unlock()
}

// MergeSnapshot adds a counter snapshot into the shared set.
func (l *LockedCounters) MergeSnapshot(snap map[string]uint64) {
	l.mu.Lock()
	l.c.MergeSnapshot(snap)
	l.mu.Unlock()
}

// Snapshot returns a copy of the current totals.
func (l *LockedCounters) Snapshot() map[string]uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.c.Snapshot()
}

// Get returns the value of the named counter.
func (l *LockedCounters) Get(name string) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.c.Get(name)
}

// Cycles accumulates simulated processor cycles. It is kept separate from
// Counters so cost-model changes do not disturb event counts.
type Cycles struct {
	total uint64
}

// Add charges n cycles.
func (c *Cycles) Add(n uint64) { c.total += n }

// Total returns the cycles charged so far.
func (c *Cycles) Total() uint64 { return c.total }

// Reset zeroes the accumulator.
func (c *Cycles) Reset() { c.total = 0 }

// Histogram is a fixed-bucket histogram of uint64 samples. Bucket i counts
// samples in [bounds[i-1], bounds[i]); the final bucket is unbounded.
type Histogram struct {
	bounds []uint64
	counts []uint64
	n      uint64
	sum    uint64
	max    uint64
}

// NewHistogram creates a histogram with the given ascending bucket upper
// bounds. It panics if bounds are not strictly ascending, since histogram
// shape is fixed at construction.
func NewHistogram(bounds ...uint64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds: append([]uint64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v < h.bounds[i] })
	h.counts[i]++
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.n }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() uint64 { return h.sum }

// Max returns the largest sample observed (zero if none).
func (h *Histogram) Max() uint64 { return h.max }

// Mean returns the arithmetic mean of samples (zero if none).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Buckets returns (upper bound, count) pairs; the last pair has bound 0,
// meaning "and above".
func (h *Histogram) Buckets() ([]uint64, []uint64) {
	return append([]uint64(nil), h.bounds...), append([]uint64(nil), h.counts...)
}

// String renders the histogram compactly.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.2f max=%d\n", h.n, h.Mean(), h.max)
	prev := uint64(0)
	for i, c := range h.counts {
		if i < len(h.bounds) {
			fmt.Fprintf(&b, "  [%d,%d): %d\n", prev, h.bounds[i], c)
			prev = h.bounds[i]
		} else {
			fmt.Fprintf(&b, "  [%d,+inf): %d\n", prev, c)
		}
	}
	return b.String()
}
