// Package stats provides the measurement substrate for the simulator:
// named event counters, cycle accounting against a parameterized cost
// model, simple histograms, and plain-text table rendering for the
// experiment harness.
//
// Every hardware structure (PLB, TLBs, page-group cache, data caches) and
// the kernel increment counters here; experiments read them back to
// tabulate the per-operation costs that the paper's Table 1 describes
// qualitatively.
package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Counters is a set of named monotonic event counters. The zero value is
// ready to use. Counters is not safe for concurrent use; the simulator is
// single-threaded by design (cycle-accurate interleaving is explicit).
type Counters struct {
	m map[string]uint64
}

// Add increments the named counter by n.
func (c *Counters) Add(name string, n uint64) {
	if c.m == nil {
		c.m = make(map[string]uint64)
	}
	c.m[name] += n
}

// Inc increments the named counter by one.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Get returns the value of the named counter (zero if never incremented).
func (c *Counters) Get(name string) uint64 { return c.m[name] }

// Reset clears all counters.
func (c *Counters) Reset() { c.m = nil }

// Names returns all counter names in sorted order.
func (c *Counters) Names() []string {
	names := make([]string, 0, len(c.m))
	for k := range c.m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns a copy of the current counter values.
func (c *Counters) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// Diff returns counters holding the difference between c and an earlier
// snapshot (c - before). Counters absent from the snapshot are treated as
// zero there.
func (c *Counters) Diff(before map[string]uint64) *Counters {
	out := &Counters{}
	for k, v := range c.m {
		if d := v - before[k]; d != 0 {
			out.Add(k, d)
		}
	}
	return out
}

// Merge adds all of other's counters into c.
func (c *Counters) Merge(other *Counters) {
	for k, v := range other.m {
		c.Add(k, v)
	}
}

// MergeSnapshot adds a counter snapshot (as returned by Snapshot) into c.
func (c *Counters) MergeSnapshot(snap map[string]uint64) {
	for k, v := range snap {
		c.Add(k, v)
	}
}

// String renders the counters one per line, sorted by name.
func (c *Counters) String() string {
	var b strings.Builder
	for _, name := range c.Names() {
		fmt.Fprintf(&b, "%-40s %12d\n", name, c.m[name])
	}
	return b.String()
}

// LockedCounters is a mutex-guarded counter set for aggregation points
// shared between goroutines (the parallel experiment runner merges each
// worker's per-run counters here as runs finish). Individual simulator
// structures keep using plain Counters: a simulated machine is
// single-threaded by design, and only whole-run aggregation crosses
// goroutines. Because counter addition is commutative, the merged totals
// are deterministic regardless of merge order.
type LockedCounters struct {
	mu sync.Mutex
	c  Counters
}

// Add increments the named counter by n.
func (l *LockedCounters) Add(name string, n uint64) {
	l.mu.Lock()
	l.c.Add(name, n)
	l.mu.Unlock()
}

// Inc increments the named counter by one.
func (l *LockedCounters) Inc(name string) { l.Add(name, 1) }

// MergeSnapshot adds a counter snapshot into the shared set.
func (l *LockedCounters) MergeSnapshot(snap map[string]uint64) {
	l.mu.Lock()
	l.c.MergeSnapshot(snap)
	l.mu.Unlock()
}

// Snapshot returns a copy of the current totals.
func (l *LockedCounters) Snapshot() map[string]uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.c.Snapshot()
}

// Get returns the value of the named counter.
func (l *LockedCounters) Get(name string) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.c.Get(name)
}

// Cycles accumulates simulated processor cycles. It is kept separate from
// Counters so cost-model changes do not disturb event counts.
type Cycles struct {
	total uint64
}

// Add charges n cycles.
func (c *Cycles) Add(n uint64) { c.total += n }

// Total returns the cycles charged so far.
func (c *Cycles) Total() uint64 { return c.total }

// Reset zeroes the accumulator.
func (c *Cycles) Reset() { c.total = 0 }

// Histogram is a fixed-bucket histogram of uint64 samples. Bucket i counts
// samples in [bounds[i-1], bounds[i]); the final bucket is unbounded.
type Histogram struct {
	bounds []uint64
	counts []uint64
	n      uint64
	sum    uint64
	max    uint64
}

// NewHistogram creates a histogram with the given ascending bucket upper
// bounds. It panics if bounds are not strictly ascending, since histogram
// shape is fixed at construction.
func NewHistogram(bounds ...uint64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds: append([]uint64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v < h.bounds[i] })
	h.counts[i]++
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.n }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() uint64 { return h.sum }

// Max returns the largest sample observed (zero if none).
func (h *Histogram) Max() uint64 { return h.max }

// Mean returns the arithmetic mean of samples (zero if none).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Buckets returns (upper bound, count) pairs; the last pair has bound 0,
// meaning "and above".
func (h *Histogram) Buckets() ([]uint64, []uint64) {
	return append([]uint64(nil), h.bounds...), append([]uint64(nil), h.counts...)
}

// String renders the histogram compactly.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.2f max=%d\n", h.n, h.Mean(), h.max)
	prev := uint64(0)
	for i, c := range h.counts {
		if i < len(h.bounds) {
			fmt.Fprintf(&b, "  [%d,%d): %d\n", prev, h.bounds[i], c)
			prev = h.bounds[i]
		} else {
			fmt.Fprintf(&b, "  [%d,+inf): %d\n", prev, c)
		}
	}
	return b.String()
}
