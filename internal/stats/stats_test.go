package stats

import (
	"strings"
	"sync"
	"testing"
)

func TestCountersBasics(t *testing.T) {
	var c Counters
	if c.Get("x") != 0 {
		t.Fatal("fresh counter not zero")
	}
	c.Inc("x")
	c.Add("x", 4)
	c.Add("y", 2)
	if c.Get("x") != 5 || c.Get("y") != 2 {
		t.Fatalf("got x=%d y=%d", c.Get("x"), c.Get("y"))
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "x" || names[1] != "y" {
		t.Fatalf("Names = %v", names)
	}
	c.Reset()
	if c.Get("x") != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestCountersSnapshotDiff(t *testing.T) {
	var c Counters
	c.Add("a", 10)
	c.Add("b", 1)
	snap := c.Snapshot()
	c.Add("a", 5)
	c.Add("c", 3)
	d := c.Diff(snap)
	if d.Get("a") != 5 || d.Get("b") != 0 || d.Get("c") != 3 {
		t.Fatalf("Diff = %v", d.Snapshot())
	}
	// Diff must not contain zero-valued entries.
	for _, n := range d.Names() {
		if d.Get(n) == 0 {
			t.Errorf("Diff contains zero counter %q", n)
		}
	}
	// Snapshot must be a copy, not an alias.
	snap["a"] = 999
	if c.Get("a") != 15 {
		t.Error("Snapshot aliases the live map")
	}
}

func TestCountersMerge(t *testing.T) {
	var a, b Counters
	a.Add("x", 1)
	b.Add("x", 2)
	b.Add("y", 7)
	a.Merge(&b)
	if a.Get("x") != 3 || a.Get("y") != 7 {
		t.Fatalf("Merge: %v", a.Snapshot())
	}
}

func TestCyclesAccumulate(t *testing.T) {
	var cy Cycles
	cy.Add(10)
	cy.Add(5)
	if cy.Total() != 15 {
		t.Fatalf("Total = %d", cy.Total())
	}
	cy.Reset()
	if cy.Total() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 100)
	for _, v := range []uint64{0, 5, 9, 10, 50, 99, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 8 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Max() != 1000 {
		t.Fatalf("Max = %d", h.Max())
	}
	bounds, counts := h.Buckets()
	if len(bounds) != 2 || len(counts) != 3 {
		t.Fatalf("Buckets: %v %v", bounds, counts)
	}
	if counts[0] != 3 || counts[1] != 3 || counts[2] != 2 {
		t.Fatalf("counts = %v", counts)
	}
	wantMean := float64(0+5+9+10+50+99+100+1000) / 8
	if h.Mean() != wantMean {
		t.Fatalf("Mean = %f, want %f", h.Mean(), wantMean)
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on descending bounds")
		}
	}()
	NewHistogram(10, 5)
}

func TestHistogramEmptyMean(t *testing.T) {
	h := NewHistogram(1)
	if h.Mean() != 0 {
		t.Fatal("empty histogram mean should be 0")
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "name", "count")
	tb.AddRow("alpha", 1)
	tb.AddRow("beta-long-name", 123456)
	tb.AddRow("gamma", 3.14159)
	tb.AddNote("a footnote")
	s := tb.String()
	for _, want := range []string{"Demo", "name", "count", "alpha", "beta-long-name", "123456", "3.142", "note: a footnote"} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q in:\n%s", want, s)
		}
	}
	if tb.NumRows() != 3 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
	// Header and first row must be aligned: 'count' column starts at same
	// offset in header and rows.
	lines := strings.Split(s, "\n")
	var headerLine, rowLine string
	for i, l := range lines {
		if strings.HasPrefix(l, "name") {
			headerLine = l
			rowLine = lines[i+2]
			break
		}
	}
	if strings.Index(headerLine, "count") != strings.Index(rowLine, "1") {
		t.Errorf("misaligned columns:\n%q\n%q", headerLine, rowLine)
	}
}

func TestRatioPct(t *testing.T) {
	if Ratio(10, 5) != "2.00x" {
		t.Errorf("Ratio(10,5) = %s", Ratio(10, 5))
	}
	if Ratio(0, 0) != "1.00x" {
		t.Errorf("Ratio(0,0) = %s", Ratio(0, 0))
	}
	if Ratio(3, 0) != "inf" {
		t.Errorf("Ratio(3,0) = %s", Ratio(3, 0))
	}
	if Pct(1, 4) != "25.0%" {
		t.Errorf("Pct(1,4) = %s", Pct(1, 4))
	}
	if Pct(1, 0) != "0.0%" {
		t.Errorf("Pct(1,0) = %s", Pct(1, 0))
	}
}

func TestMergeSnapshot(t *testing.T) {
	var c Counters
	c.Add("x", 1)
	c.MergeSnapshot(map[string]uint64{"x": 2, "y": 5})
	if c.Get("x") != 3 || c.Get("y") != 5 {
		t.Fatalf("got x=%d y=%d", c.Get("x"), c.Get("y"))
	}
}

// TestLockedCountersConcurrent hammers the shared aggregation point from
// many goroutines; run under -race this is the thread-safety proof, and
// the final totals check commutativity (order-independent merging).
func TestLockedCountersConcurrent(t *testing.T) {
	var l LockedCounters
	const workers, rounds = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				l.Inc("inc")
				l.Add("add", 2)
				l.MergeSnapshot(map[string]uint64{"merged": 3, "worker": uint64(w)})
			}
		}(w)
	}
	wg.Wait()
	if got := l.Get("inc"); got != workers*rounds {
		t.Errorf("inc = %d, want %d", got, workers*rounds)
	}
	if got := l.Get("add"); got != 2*workers*rounds {
		t.Errorf("add = %d, want %d", got, 2*workers*rounds)
	}
	if got := l.Get("merged"); got != 3*workers*rounds {
		t.Errorf("merged = %d, want %d", got, 3*workers*rounds)
	}
	snap := l.Snapshot()
	if snap["worker"] != uint64(rounds*(0+1+2+3+4+5+6+7)) {
		t.Errorf("worker total = %d", snap["worker"])
	}
}

func TestHandleIncAdd(t *testing.T) {
	c := &Counters{}
	h := c.Handle("x.hits")
	h.Inc()
	h.Add(4)
	if got := c.Get("x.hits"); got != 5 {
		t.Fatalf("Get after handle Inc/Add = %d, want 5", got)
	}
	if got := h.Get(); got != 5 {
		t.Fatalf("Handle.Get = %d, want 5", got)
	}
	if h.Name() != "x.hits" {
		t.Fatalf("Handle.Name = %q, want x.hits", h.Name())
	}
	// The name-based API shares the slot.
	c.Add("x.hits", 1)
	if got := h.Get(); got != 6 {
		t.Fatalf("Handle.Get after name-based Add = %d, want 6", got)
	}
	// Resolving the same name again returns the same slot.
	h2 := c.Handle("x.hits")
	h2.Inc()
	if got := h.Get(); got != 7 {
		t.Fatalf("handles for one name diverged: %d, want 7", got)
	}
}

func TestHandleRegistrationInvisibleUntilTouched(t *testing.T) {
	// Structures pre-resolve every counter they might bump; names must not
	// leak into output until an event actually fires (seed parity).
	c := &Counters{}
	h := c.Handle("never.fired")
	if names := c.Names(); len(names) != 0 {
		t.Fatalf("Names after Handle = %v, want empty", names)
	}
	if snap := c.Snapshot(); len(snap) != 0 {
		t.Fatalf("Snapshot after Handle = %v, want empty", snap)
	}
	if c.String() != "" {
		t.Fatalf("String after Handle = %q, want empty", c.String())
	}
	// An Add of zero materializes the counter, like the seed's map write.
	h.Add(0)
	if snap := c.Snapshot(); len(snap) != 1 || snap["never.fired"] != 0 {
		t.Fatalf("Snapshot after Add(0) = %v, want {never.fired:0}", snap)
	}
}

func TestHandleSurvivesReset(t *testing.T) {
	c := &Counters{}
	h := c.Handle("a")
	h.Add(3)
	c.Reset()
	if got := c.Get("a"); got != 0 {
		t.Fatalf("Get after Reset = %d, want 0", got)
	}
	if names := c.Names(); len(names) != 0 {
		t.Fatalf("Names after Reset = %v, want empty (zero-Add cleared)", names)
	}
	h.Inc()
	if got := c.Get("a"); got != 1 {
		t.Fatalf("handle after Reset: Get = %d, want 1", got)
	}
}

func TestCountersMergeBySlot(t *testing.T) {
	a, b := &Counters{}, &Counters{}
	a.Add("x", 1)
	b.Add("x", 2)
	b.Add("y", 3)
	b.Handle("hidden") // registered but never fired: must not merge
	a.Merge(b)
	if got := a.Get("x"); got != 3 {
		t.Fatalf("x = %d, want 3", got)
	}
	if got := a.Get("y"); got != 3 {
		t.Fatalf("y = %d, want 3", got)
	}
	if got := a.Names(); len(got) != 2 {
		t.Fatalf("Names = %v, want [x y]", got)
	}
}

func TestLockedCountersMerge(t *testing.T) {
	var l LockedCounters
	c := &Counters{}
	c.Add("x", 2)
	l.Merge(c)
	l.Merge(c)
	if got := l.Get("x"); got != 4 {
		t.Fatalf("x = %d, want 4", got)
	}
}

func BenchmarkHandleInc(b *testing.B) {
	c := &Counters{}
	h := c.Handle("bench.counter")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Inc()
	}
}

func BenchmarkNameInc(b *testing.B) {
	c := &Counters{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc("bench.counter")
	}
}
