// Package machine composes the hardware structures into the four machine
// organizations the paper compares:
//
//   - PLBMachine (Figure 1): PD-ID register + protection lookaside buffer
//     probed in parallel with a virtually indexed, virtually tagged data
//     cache; a translation-only TLB at the second level, off the critical
//     path, consulted only on cache misses and writebacks.
//
//   - PGMachine (Figure 2): PA-RISC style. An on-chip TLB carrying
//     translation + access identifier (AID) + rights is probed on every
//     reference, followed sequentially by a check of the AID against the
//     current domain's page-group set (PID registers or an LRU group
//     cache).
//
//   - ConventionalMachine (Section 3.1): an ASID-tagged combined TLB over
//     per-address-space linear page tables, with a VIVT cache whose tags
//     are extended with the ASID. The baseline for the TLB-duplication and
//     virtual-cache experiments.
//
//   - FlushMachine: a conventional machine without ASIDs that must flush
//     the TLB and data cache on every context switch (the i860 regime).
//
// Machines are purely architectural: they count structure events and
// charge cycles, trapping to an OS interface to resolve misses. They never
// move data; the kernel performs functional reads/writes against physical
// memory after the machine approves an access.
package machine

import (
	"repro/internal/addr"
	"repro/internal/cpu"
	"repro/internal/ptable"
	"repro/internal/stats"
)

// OS is the software interface single address space machines trap to on
// structure misses. The kernel implements it.
type OS interface {
	// Translate returns the global translation for vpn. ok is false if
	// the page is unmapped (page fault).
	Translate(vpn addr.VPN) (pfn addr.PFN, ok bool)
	// ResolveRights returns domain d's access rights to vpn from the
	// kernel's protection tables. ok is false if the kernel has no record
	// of the page at all (an addressing error, not a protection fault).
	// cacheable reports whether the kernel holds a protection record for
	// (d, page) — attachment or override — that protection hardware may
	// cache. A domain with no record resolves to (None, false, true):
	// the access faults but nothing is installed, so a later grant
	// (attach) needs no hardware invalidation.
	ResolveRights(d addr.DomainID, vpn addr.VPN) (r addr.Rights, cacheable, ok bool)
	// PageInfo returns the page-group identifier and group rights of vpn
	// (page-group machine TLB refill). ok is false for unknown pages.
	PageInfo(vpn addr.VPN) (aid addr.GroupID, r addr.Rights, ok bool)
	// DomainGroup reports whether domain d may access page-group g, and
	// whether the domain's writes to the group are disabled.
	DomainGroup(d addr.DomainID, g addr.GroupID) (ok, writeDisabled bool)
	// DomainGroups lists all groups accessible to d, for eager page-group
	// cache reload on domain switches (Section 4.1.4).
	DomainGroups(d addr.DomainID) []GroupAccess
}

// ProtShifter is an optional OS extension for multiple protection page
// sizes (Section 4.3): when implemented, the PLB machine installs refill
// entries at the shift the kernel reports for (domain, page) — a
// super-page entry for constant-rights segments, the base shift
// elsewhere. The shift must be one of the PLB's configured size classes.
type ProtShifter interface {
	ProtShift(d addr.DomainID, vpn addr.VPN) uint
}

// ResidencyObserver is an optional OS extension the machines notify
// when hardware installs an entry naming a domain or a page: the
// kernel's sharer directory records which CPU gained which state, so
// shootdowns can target only CPUs that actually hold an entry instead
// of every CPU a domain ever ran on. Installs happen on the executing
// CPU, so the observer attributes each note to its current CPU. Like
// ProtShifter, implementation is discovered by type assertion on the
// OS at construction; an OS that does not implement it costs nothing.
type ResidencyObserver interface {
	// NoteProtInstall records that the executing CPU installed a
	// protection entry for (d, vpn): PLB entry, ASID-tagged TLB entry.
	NoteProtInstall(d addr.DomainID, vpn addr.VPN)
	// NotePageInstall records that the executing CPU installed
	// translation state for vpn (trans-TLB, PG-TLB, ASID TLB entries).
	NotePageInstall(vpn addr.VPN)
}

// GroupAccess is one element of a domain's page-group set.
type GroupAccess struct {
	Group        addr.GroupID
	WriteDisable bool
}

// MultiOS is the software interface of the conventional multiple address
// space baselines: per-address-space page tables.
type MultiOS interface {
	// Walk performs a page table walk in address space as.
	Walk(as addr.ASID, vpn addr.VPN) (ptable.LinearPTE, bool)
}

// Machine is the interface common to all four organizations, sufficient
// for trace-driven experiments and the kernel's access path.
type Machine interface {
	// Name identifies the organization ("plb", "page-group", ...).
	Name() string
	// SwitchDomain makes d the executing protection domain, performing
	// whatever hardware actions the model requires (a register write on
	// the PLB machine; a page-group cache purge and reload on the
	// page-group machine; a full flush on the flush machine).
	SwitchDomain(d addr.DomainID)
	// Domain returns the executing domain.
	Domain() addr.DomainID
	// Access issues one memory reference at va. Structure misses that
	// hardware and kernel resolve transparently (refills) are handled
	// inside, with their traps counted and charged; only faults needing
	// policy (protection, page, addressing) surface in the Outcome.
	Access(va addr.VA, kind addr.AccessKind) cpu.Outcome
	// Counters exposes the machine's event counters.
	Counters() *stats.Counters
	// Cycles returns total cycles charged so far.
	Cycles() uint64
	// Costs returns the machine's cost model.
	Costs() cpu.CostModel
}

// Counter names shared across machines, so experiment code can tabulate
// uniformly.
const (
	CtrAccesses        = "access.total"
	CtrStores          = "access.stores"
	CtrTrapPLBRefill   = "trap.plb_refill"
	CtrTrapTLBRefill   = "trap.tlb_refill"
	CtrTrapPGRefill    = "trap.pg_refill"
	CtrFaultProt       = "fault.protection"
	CtrFaultUnmapped   = "fault.page_unmapped"
	CtrFaultAddressing = "fault.no_authority"
	CtrSwitches        = "switch.count"
	CtrSwitchCycles    = "switch.cycles"
)
