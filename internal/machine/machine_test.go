package machine

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/cpu"
	"repro/internal/ptable"
)

// fakeOS is a table-driven OS for machine tests.
type fakeOS struct {
	trans  map[addr.VPN]addr.PFN
	rights map[addr.DomainID]map[addr.VPN]addr.Rights
	groups map[addr.VPN]addr.GroupID
	pageR  map[addr.VPN]addr.Rights
	domGrp map[addr.DomainID]map[addr.GroupID]bool // value: write-disable
}

func newFakeOS() *fakeOS {
	return &fakeOS{
		trans:  map[addr.VPN]addr.PFN{},
		rights: map[addr.DomainID]map[addr.VPN]addr.Rights{},
		groups: map[addr.VPN]addr.GroupID{},
		pageR:  map[addr.VPN]addr.Rights{},
		domGrp: map[addr.DomainID]map[addr.GroupID]bool{},
	}
}

func (f *fakeOS) grant(d addr.DomainID, vpn addr.VPN, r addr.Rights) {
	if f.rights[d] == nil {
		f.rights[d] = map[addr.VPN]addr.Rights{}
	}
	f.rights[d][vpn] = r
}

func (f *fakeOS) setPage(vpn addr.VPN, pfn addr.PFN, g addr.GroupID, r addr.Rights) {
	f.trans[vpn] = pfn
	f.groups[vpn] = g
	f.pageR[vpn] = r
}

func (f *fakeOS) grantGroup(d addr.DomainID, g addr.GroupID, wd bool) {
	if f.domGrp[d] == nil {
		f.domGrp[d] = map[addr.GroupID]bool{}
	}
	f.domGrp[d][g] = wd
}

func (f *fakeOS) Translate(vpn addr.VPN) (addr.PFN, bool) {
	p, ok := f.trans[vpn]
	return p, ok
}

func (f *fakeOS) ResolveRights(d addr.DomainID, vpn addr.VPN) (addr.Rights, bool, bool) {
	m, ok := f.rights[d]
	if !ok {
		return addr.None, false, false
	}
	r, ok := m[vpn]
	if !ok {
		return addr.None, false, false
	}
	return r, true, true
}

func (f *fakeOS) PageInfo(vpn addr.VPN) (addr.GroupID, addr.Rights, bool) {
	g, ok := f.groups[vpn]
	if !ok {
		return 0, addr.None, false
	}
	return g, f.pageR[vpn], true
}

func (f *fakeOS) DomainGroup(d addr.DomainID, g addr.GroupID) (bool, bool) {
	m, ok := f.domGrp[d]
	if !ok {
		return false, false
	}
	wd, ok := m[g]
	return ok, wd
}

func (f *fakeOS) DomainGroups(d addr.DomainID) []GroupAccess {
	var out []GroupAccess
	for g, wd := range f.domGrp[d] {
		out = append(out, GroupAccess{Group: g, WriteDisable: wd})
	}
	return out
}

const page = uint64(addr.BasePageSize)

func va(vpn uint64) addr.VA { return addr.VA(vpn * page) }

// --- PLB machine ---

func newPLBMachine(os OS) *PLBMachine { return MustPLB(DefaultPLBConfig(), os) }

func TestPLBAccessHappyPath(t *testing.T) {
	os := newFakeOS()
	os.trans[1] = 7
	os.grant(1, 1, addr.RW)
	m := newPLBMachine(os)
	m.SwitchDomain(1)

	// First access: PLB refill trap + TLB refill + cache fill.
	out := m.Access(va(1), addr.Load)
	if !out.OK() {
		t.Fatalf("fault: %v", out.Fault)
	}
	c := m.Counters()
	if c.Get(CtrTrapPLBRefill) != 1 || c.Get("plb.miss") != 1 || c.Get("tlb.miss") != 1 ||
		c.Get("cache.miss") != 1 {
		t.Fatalf("counters: %v", c.Snapshot())
	}
	// Second access to same line: pure hit, no traps.
	before := c.Snapshot()
	if out := m.Access(va(1), addr.Load); !out.OK() {
		t.Fatal("second access faulted")
	}
	d := c.Diff(before)
	if d.Get("plb.hit") != 1 || d.Get("cache.hit") != 1 {
		t.Fatalf("diff: %v", d.Snapshot())
	}
	if d.Get(CtrTrapPLBRefill) != 0 || d.Get(CtrTrapTLBRefill) != 0 {
		t.Fatal("warm access trapped")
	}
}

func TestPLBProtectionFault(t *testing.T) {
	os := newFakeOS()
	os.trans[1] = 7
	os.grant(1, 1, addr.Read)
	m := newPLBMachine(os)
	m.SwitchDomain(1)
	if out := m.Access(va(1), addr.Store); out.Fault != cpu.FaultProtection {
		t.Fatalf("fault = %v, want protection", out.Fault)
	}
	// Read still works.
	if out := m.Access(va(1), addr.Load); !out.OK() {
		t.Fatal("read faulted")
	}
	// A repeated illegal store faults on the resident None-write entry
	// without re-resolving (no second refill trap).
	before := m.Counters().Snapshot()
	m.Access(va(1), addr.Store)
	if d := m.Counters().Diff(before); d.Get(CtrTrapPLBRefill) != 0 {
		t.Fatal("repeated illegal access re-resolved")
	}
}

func TestPLBNoAuthority(t *testing.T) {
	os := newFakeOS()
	os.trans[1] = 7
	m := newPLBMachine(os)
	m.SwitchDomain(1)
	if out := m.Access(va(1), addr.Load); out.Fault != cpu.FaultNoAuthority {
		t.Fatalf("fault = %v, want no-authority", out.Fault)
	}
}

func TestPLBPageUnmapped(t *testing.T) {
	os := newFakeOS()
	os.grant(1, 1, addr.RW)
	m := newPLBMachine(os)
	m.SwitchDomain(1)
	if out := m.Access(va(1), addr.Load); out.Fault != cpu.FaultPageUnmapped {
		t.Fatalf("fault = %v, want page-unmapped", out.Fault)
	}
}

func TestPLBDomainSwitchIsOneRegister(t *testing.T) {
	os := newFakeOS()
	os.trans[1] = 7
	os.grant(1, 1, addr.RW)
	os.grant(2, 1, addr.Read)
	m := newPLBMachine(os)
	m.SwitchDomain(1)
	m.Access(va(1), addr.Load)
	plbLen, tlbLen, cacheLen := m.PLB().Len(), m.TLB().Len(), m.Cache().Len()
	cyc := m.Cycles()
	m.SwitchDomain(2)
	// Switch must not purge anything and must cost one register write.
	if m.PLB().Len() != plbLen || m.TLB().Len() != tlbLen || m.Cache().Len() != cacheLen {
		t.Fatal("domain switch disturbed hardware state")
	}
	if got := m.Cycles() - cyc; got != m.Costs().RegisterWrite {
		t.Fatalf("switch cost = %d, want %d", got, m.Costs().RegisterWrite)
	}
	// Domain 2's rights fault in independently; domain 1's entry remains.
	if out := m.Access(va(1), addr.Load); !out.OK() {
		t.Fatal("domain 2 access failed")
	}
	if m.PLB().Len() != plbLen+1 {
		t.Fatal("expected a second PLB entry for the shared page")
	}
}

func TestPLBSharedPageSingleTLBEntry(t *testing.T) {
	os := newFakeOS()
	os.trans[1] = 7
	os.grant(1, 1, addr.RW)
	os.grant(2, 1, addr.Read)
	m := newPLBMachine(os)
	m.SwitchDomain(1)
	m.Access(va(1), addr.Load)
	m.SwitchDomain(2)
	// Force a cache miss for domain 2's access so translation is needed:
	// access a different line of the same page.
	m.Access(va(1)+64, addr.Load)
	// The translation TLB holds ONE entry for the page despite two
	// domains using it (Section 3.2.1).
	if m.TLB().Len() != 1 {
		t.Fatalf("TLB entries = %d, want 1", m.TLB().Len())
	}
	// And the second domain's cache-missing access hit the TLB.
	if m.Counters().Get("tlb.miss") != 1 {
		t.Fatalf("tlb.miss = %d, want 1", m.Counters().Get("tlb.miss"))
	}
}

func TestPLBUpdateRightsAffectsOneDomain(t *testing.T) {
	os := newFakeOS()
	os.trans[1] = 7
	os.grant(1, 1, addr.RW)
	os.grant(2, 1, addr.RW)
	m := newPLBMachine(os)
	m.SwitchDomain(1)
	m.Access(va(1), addr.Load)
	m.SwitchDomain(2)
	m.Access(va(1), addr.Load)

	// Revoke domain 1's write access in the PLB (kernel-side tables are
	// the fake's responsibility; here we check hardware behaviour).
	os.grant(1, 1, addr.Read)
	m.UpdateRights(1, va(1), addr.Read)
	m.SwitchDomain(1)
	if out := m.Access(va(1), addr.Store); out.Fault != cpu.FaultProtection {
		t.Fatal("revoked write allowed")
	}
	m.SwitchDomain(2)
	if out := m.Access(va(1), addr.Store); !out.OK() {
		t.Fatal("unrelated domain's write blocked")
	}
}

func TestPLBDetachRange(t *testing.T) {
	os := newFakeOS()
	for vpn := addr.VPN(0); vpn < 4; vpn++ {
		os.trans[vpn] = addr.PFN(vpn + 1)
		os.grant(1, vpn, addr.RW)
	}
	m := newPLBMachine(os)
	m.SwitchDomain(1)
	for vpn := uint64(0); vpn < 4; vpn++ {
		m.Access(va(vpn), addr.Load)
	}
	if m.PLB().Len() != 4 {
		t.Fatalf("PLB len = %d", m.PLB().Len())
	}
	m.DetachRange(1, va(1), 2*page)
	if m.PLB().Len() != 2 {
		t.Fatalf("PLB len after detach = %d", m.PLB().Len())
	}
}

func TestPLBUnmapPage(t *testing.T) {
	os := newFakeOS()
	os.trans[1] = 7
	os.grant(1, 1, addr.RW)
	m := newPLBMachine(os)
	m.SwitchDomain(1)
	m.Access(va(1), addr.Store)
	if m.TLB().Len() != 1 || m.Cache().Len() != 1 {
		t.Fatal("setup failed")
	}
	delete(os.trans, 1)
	m.UnmapPage(1)
	if m.TLB().Len() != 0 || m.Cache().Len() != 0 {
		t.Fatal("unmap left residue")
	}
	// The stale PLB entry may remain; the access faults on translation.
	if out := m.Access(va(1), addr.Load); out.Fault != cpu.FaultPageUnmapped {
		t.Fatalf("fault = %v, want page-unmapped", out.Fault)
	}
}

// --- Page-group machine ---

func TestPGAccessHappyPath(t *testing.T) {
	os := newFakeOS()
	os.setPage(1, 7, 5, addr.RW)
	os.grantGroup(1, 5, false)
	m := NewPG(DefaultPGConfig(), os)
	m.SwitchDomain(1)

	out := m.Access(va(1), addr.Load)
	if !out.OK() {
		t.Fatalf("fault: %v", out.Fault)
	}
	c := m.Counters()
	if c.Get(CtrTrapTLBRefill) != 1 || c.Get(CtrTrapPGRefill) != 1 {
		t.Fatalf("counters: %v", c.Snapshot())
	}
	// Warm access: no traps.
	before := c.Snapshot()
	m.Access(va(1), addr.Load)
	d := c.Diff(before)
	if d.Get(CtrTrapTLBRefill) != 0 || d.Get(CtrTrapPGRefill) != 0 {
		t.Fatal("warm access trapped")
	}
}

func TestPGGlobalGroupAlwaysAccessible(t *testing.T) {
	os := newFakeOS()
	os.setPage(1, 7, addr.GlobalGroup, addr.Read)
	m := NewPG(DefaultPGConfig(), os)
	m.SwitchDomain(1) // domain 1 has no groups at all
	if out := m.Access(va(1), addr.Load); !out.OK() {
		t.Fatalf("global group access faulted: %v", out.Fault)
	}
	if out := m.Access(va(1), addr.Store); out.Fault != cpu.FaultProtection {
		t.Fatal("rights field ignored for global group")
	}
}

func TestPGDomainWithoutGroupFaults(t *testing.T) {
	os := newFakeOS()
	os.setPage(1, 7, 5, addr.RW)
	os.grantGroup(1, 5, false)
	m := NewPG(DefaultPGConfig(), os)
	m.SwitchDomain(2) // domain 2 has no access to group 5
	if out := m.Access(va(1), addr.Load); out.Fault != cpu.FaultProtection {
		t.Fatalf("fault = %v, want protection", out.Fault)
	}
}

func TestPGWriteDisableBit(t *testing.T) {
	os := newFakeOS()
	os.setPage(1, 7, 5, addr.RW)
	os.grantGroup(1, 5, true) // write-disabled for domain 1
	os.grantGroup(2, 5, false)
	m := NewPG(DefaultPGConfig(), os)
	m.SwitchDomain(1)
	if out := m.Access(va(1), addr.Load); !out.OK() {
		t.Fatal("read blocked by write-disable")
	}
	if out := m.Access(va(1), addr.Store); out.Fault != cpu.FaultProtection {
		t.Fatal("write-disable not enforced")
	}
	m.SwitchDomain(2)
	if out := m.Access(va(1), addr.Store); !out.OK() {
		t.Fatal("write blocked for domain without write-disable")
	}
}

func TestPGDomainSwitchPurgesChecker(t *testing.T) {
	os := newFakeOS()
	os.setPage(1, 7, 5, addr.RW)
	os.grantGroup(1, 5, false)
	os.grantGroup(2, 5, false)
	m := NewPG(DefaultPGConfig(), os)
	m.SwitchDomain(1)
	m.Access(va(1), addr.Load)
	if m.Checker().Len() != 1 {
		t.Fatal("group not loaded")
	}
	tlbLen := m.TLB().Len()
	m.SwitchDomain(2)
	// Checker purged; TLB and cache untouched (their contents are
	// domain-independent).
	if m.Checker().Len() != 0 {
		t.Fatal("checker not purged on switch")
	}
	if m.TLB().Len() != tlbLen {
		t.Fatal("TLB purged on switch")
	}
	// Domain 2's access re-faults the group in.
	before := m.Counters().Snapshot()
	if out := m.Access(va(1), addr.Load); !out.OK() {
		t.Fatal("domain 2 access failed")
	}
	if d := m.Counters().Diff(before); d.Get(CtrTrapPGRefill) != 1 {
		t.Fatal("expected a pg refill trap after switch")
	}
}

func TestPGEagerReload(t *testing.T) {
	os := newFakeOS()
	os.setPage(1, 7, 5, addr.RW)
	os.grantGroup(2, 5, false)
	cfg := DefaultPGConfig()
	cfg.EagerReload = true
	m := NewPG(cfg, os)
	m.SwitchDomain(2)
	if m.Checker().Len() != 1 {
		t.Fatal("eager reload did not load groups")
	}
	// Access proceeds with no pg refill trap.
	before := m.Counters().Snapshot()
	if out := m.Access(va(1), addr.Load); !out.OK() {
		t.Fatal("access failed")
	}
	if d := m.Counters().Diff(before); d.Get(CtrTrapPGRefill) != 0 {
		t.Fatal("eager reload still trapped")
	}
}

func TestPGSharedPageOneTLBEntry(t *testing.T) {
	os := newFakeOS()
	os.setPage(1, 7, 5, addr.RW)
	os.grantGroup(1, 5, false)
	os.grantGroup(2, 5, false)
	m := NewPG(DefaultPGConfig(), os)
	m.SwitchDomain(1)
	m.Access(va(1), addr.Load)
	m.SwitchDomain(2)
	m.Access(va(1), addr.Load)
	if m.TLB().Len() != 1 {
		t.Fatalf("TLB entries = %d, want 1 (no duplication)", m.TLB().Len())
	}
}

func TestPGUpdatePageMovesGroup(t *testing.T) {
	os := newFakeOS()
	os.setPage(1, 7, 5, addr.RW)
	os.grantGroup(1, 5, false)
	m := NewPG(DefaultPGConfig(), os)
	m.SwitchDomain(1)
	m.Access(va(1), addr.Load)
	// Kernel moves the page to group 9, which domain 1 cannot access.
	os.setPage(1, 7, 9, addr.RW)
	m.UpdatePage(1, 9, addr.RW)
	if out := m.Access(va(1), addr.Load); out.Fault != cpu.FaultProtection {
		t.Fatalf("fault = %v, want protection after group move", out.Fault)
	}
}

func TestPGPIDRegistersVariant(t *testing.T) {
	os := newFakeOS()
	for g := addr.GroupID(1); g <= 6; g++ {
		vpn := addr.VPN(g)
		os.setPage(vpn, addr.PFN(g), g, addr.RW)
		os.grantGroup(1, g, false)
	}
	cfg := DefaultPGConfig()
	cfg.Checker = PGCheckerPIDRegisters
	cfg.CheckerEntries = 4
	m := NewPG(cfg, os)
	m.SwitchDomain(1)
	// Touch 6 groups; with only 4 registers the working set thrashes.
	for round := 0; round < 2; round++ {
		for g := uint64(1); g <= 6; g++ {
			if out := m.Access(va(g), addr.Load); !out.OK() {
				t.Fatalf("access failed: %v", out.Fault)
			}
		}
	}
	// More pg refill traps than the 6 cold ones: thrash.
	if got := m.Counters().Get(CtrTrapPGRefill); got <= 6 {
		t.Fatalf("pg refills = %d, want > 6 (register thrash)", got)
	}
}

func TestPGUnmapPage(t *testing.T) {
	os := newFakeOS()
	os.setPage(1, 7, 5, addr.RW)
	os.grantGroup(1, 5, false)
	m := NewPG(DefaultPGConfig(), os)
	m.SwitchDomain(1)
	m.Access(va(1), addr.Store)
	delete(os.trans, 1)
	delete(os.groups, 1)
	m.UnmapPage(1)
	if m.TLB().Len() != 0 || m.Cache().Len() != 0 {
		t.Fatal("unmap left residue")
	}
	if out := m.Access(va(1), addr.Load); out.Fault != cpu.FaultPageUnmapped {
		t.Fatalf("fault = %v", out.Fault)
	}
}

// --- Conventional and flush machines ---

type fakeMultiOS struct {
	tables map[addr.ASID]*ptable.LinearTable
}

func newFakeMultiOS() *fakeMultiOS {
	return &fakeMultiOS{tables: map[addr.ASID]*ptable.LinearTable{}}
}

func (f *fakeMultiOS) table(as addr.ASID) *ptable.LinearTable {
	t, ok := f.tables[as]
	if !ok {
		t = ptable.NewLinearTable()
		t.AddRegion(0, 1024)
		f.tables[as] = t
	}
	return t
}

func (f *fakeMultiOS) Walk(as addr.ASID, vpn addr.VPN) (ptable.LinearPTE, bool) {
	return f.table(as).Walk(vpn)
}

func TestConventionalDuplicatesSharedEntries(t *testing.T) {
	os := newFakeMultiOS()
	// Shared frame 7 mapped at the same VPN in 3 spaces.
	for as := addr.ASID(1); as <= 3; as++ {
		os.table(as).Map(1, 7, addr.Read)
	}
	m := NewConventional(DefaultConvConfig(), os)
	for d := addr.DomainID(1); d <= 3; d++ {
		m.SwitchDomain(d)
		if out := m.Access(va(1), addr.Load); !out.OK() {
			t.Fatalf("access failed: %v", out.Fault)
		}
	}
	if m.TLB().Len() != 3 {
		t.Fatalf("TLB entries = %d, want 3 (per-AS duplication)", m.TLB().Len())
	}
	if m.TLB().ResidentFor(1) != 3 {
		t.Fatal("ResidentFor wrong")
	}
	// The shared frame is resident under multiple cache tags: synonyms.
	// (All three virtual lines index the same 2-way set, so at most two
	// coexist — the third synonym evicted one, wasting the cache.)
	if n := m.Cache().SynonymLines(m.Geometry()); n != 2 {
		t.Fatalf("SynonymLines = %d, want 2", n)
	}
}

func TestConventionalProtectionAndUnmappedFaults(t *testing.T) {
	os := newFakeMultiOS()
	os.table(1).Map(1, 7, addr.Read)
	m := NewConventional(DefaultConvConfig(), os)
	m.SwitchDomain(1)
	if out := m.Access(va(1), addr.Store); out.Fault != cpu.FaultProtection {
		t.Fatalf("fault = %v", out.Fault)
	}
	if out := m.Access(va(2), addr.Load); out.Fault != cpu.FaultPageUnmapped {
		t.Fatalf("fault = %v", out.Fault)
	}
}

func TestConventionalInvalidatePage(t *testing.T) {
	os := newFakeMultiOS()
	for as := addr.ASID(1); as <= 3; as++ {
		os.table(as).Map(1, 7, addr.Read)
	}
	m := NewConventional(DefaultConvConfig(), os)
	for d := addr.DomainID(1); d <= 3; d++ {
		m.SwitchDomain(d)
		m.Access(va(1), addr.Load)
	}
	m.InvalidatePage(1)
	if m.TLB().Len() != 0 {
		t.Fatalf("TLB entries after invalidate = %d", m.TLB().Len())
	}
}

func TestFlushMachineFlushesOnSwitch(t *testing.T) {
	os := newFakeMultiOS()
	os.table(1).Map(1, 7, addr.RW)
	os.table(2).Map(1, 8, addr.RW)
	m := NewFlush(DefaultConvConfig(), os)
	m.SwitchDomain(1)
	m.Access(va(1), addr.Store)
	if m.Cache().Len() != 1 || m.TLB().Len() != 1 {
		t.Fatal("setup failed")
	}
	m.SwitchDomain(2)
	if m.Cache().Len() != 0 || m.TLB().Len() != 0 {
		t.Fatal("switch did not flush")
	}
	// Homonym: space 2's VA 0x1000 is different data (frame 8). With the
	// flush, the access correctly misses and refills from space 2's table.
	before := m.Counters().Snapshot()
	if out := m.Access(va(1), addr.Load); !out.OK() {
		t.Fatal("access failed")
	}
	if d := m.Counters().Diff(before); d.Get("cache.miss") != 1 {
		t.Fatal("homonym falsely hit after flush")
	}
	// Switching to the same domain is free.
	cyc := m.Cycles()
	m.SwitchDomain(2)
	if m.Cycles() != cyc {
		t.Fatal("same-domain switch charged")
	}
}

func TestMachineInterfaceCompliance(t *testing.T) {
	sos := newFakeOS()
	mos := newFakeMultiOS()
	machines := []Machine{
		MustPLB(DefaultPLBConfig(), sos),
		NewPG(DefaultPGConfig(), sos),
		NewConventional(DefaultConvConfig(), mos),
		NewFlush(DefaultConvConfig(), mos),
	}
	names := map[string]bool{}
	for _, m := range machines {
		names[m.Name()] = true
		m.SwitchDomain(3)
		if m.Domain() != 3 {
			t.Errorf("%s: Domain() = %d", m.Name(), m.Domain())
		}
		if m.Counters() == nil {
			t.Errorf("%s: nil counters", m.Name())
		}
		if m.Costs().Trap == 0 {
			t.Errorf("%s: zero cost model", m.Name())
		}
	}
	if len(names) != 4 {
		t.Fatalf("names = %v", names)
	}
}

func TestVIPTConventionalNoSynonymsNoHomonyms(t *testing.T) {
	os := newFakeMultiOS()
	// Shared frame 7 at the same VPN in 3 spaces, plus a homonym: VPN 2
	// maps to different frames per space.
	for as := addr.ASID(1); as <= 3; as++ {
		os.table(as).Map(1, 7, addr.RW)
		os.table(as).Map(2, addr.PFN(10+as), addr.RW)
	}
	m := NewConventional(DefaultVIPTConvConfig(), os)
	for d := addr.DomainID(1); d <= 3; d++ {
		m.SwitchDomain(d)
		if out := m.Access(va(1), addr.Store); !out.OK() {
			t.Fatalf("shared access: %v", out.Fault)
		}
		if out := m.Access(va(2), addr.Load); !out.OK() {
			t.Fatalf("homonym access: %v", out.Fault)
		}
	}
	// The shared line is resident exactly once (physical tags collapse
	// synonyms); the three homonym lines are distinct physical lines.
	if n := m.VIPTCache().Len(); n != 1+3 {
		t.Fatalf("resident lines = %d, want 4", n)
	}
	// Domain 2's second access to the shared line must HIT (filled by
	// domain 1): physical identity is shared capacity, a VIPT advantage.
	before := m.Counters().Snapshot()
	m.SwitchDomain(2)
	m.Access(va(1), addr.Load)
	if d := m.Counters().Diff(before); d.Get("cache.miss") != 0 {
		t.Fatal("shared physical line missed for second space")
	}
}

func TestVIPTGeometryConstraint(t *testing.T) {
	cfg := DefaultVIPTConvConfig()
	cfg.Cache.Assoc.Sets = 1024 // index bits exceed the 4K page offset
	defer func() {
		if recover() == nil {
			t.Fatal("oversized VIPT index accepted")
		}
	}()
	NewConventional(cfg, newFakeMultiOS())
}

func TestVIPTUnmapFlushes(t *testing.T) {
	os := newFakeMultiOS()
	os.table(1).Map(1, 7, addr.RW)
	m := NewConventional(DefaultVIPTConvConfig(), os)
	m.SwitchDomain(1)
	m.Access(va(1), addr.Store)
	if m.VIPTCache().Len() != 1 {
		t.Fatal("setup failed")
	}
	m.UnmapPage(1)
	if m.VIPTCache().Len() != 0 {
		t.Fatal("unmap left VIPT residue")
	}
}

func TestScanOpsChargeFullCapacity(t *testing.T) {
	// An entry-by-entry hardware scan inspects every slot, valid or not
	// (§4.1.1 "inspect each entry"): the cycle charge for range updates,
	// detaches and page purges must cover the structure's capacity, not
	// just its resident entries.
	t.Run("PLBMachine", func(t *testing.T) {
		os := newFakeOS()
		os.trans[1] = 7
		os.grant(1, 1, addr.RW)
		m := newPLBMachine(os)
		m.SwitchDomain(1)
		m.Access(va(1), addr.Load) // one valid entry out of 128
		scan := uint64(m.PLB().Capacity()) * m.Costs().PurgeEntry
		before := m.Cycles()
		m.UpdateRange(1, va(0), 4*page, addr.Read)
		if got := m.Cycles() - before; got != scan {
			t.Fatalf("UpdateRange charged %d cycles, want capacity scan %d", got, scan)
		}
		before = m.Cycles()
		m.DetachRange(1, va(0), 4*page)
		if got := m.Cycles() - before; got != scan {
			t.Fatalf("DetachRange charged %d cycles, want capacity scan %d", got, scan)
		}
		before = m.Cycles()
		m.PurgePage(va(1))
		if got := m.Cycles() - before; got != scan {
			t.Fatalf("PurgePage charged %d cycles, want capacity scan %d", got, scan)
		}
	})
	t.Run("ConventionalMachine", func(t *testing.T) {
		os := newFakeMultiOS()
		os.table(1).Map(1, 7, addr.Read)
		m := NewConventional(DefaultConvConfig(), os)
		m.SwitchDomain(1)
		m.Access(va(1), addr.Load)
		scan := uint64(m.TLB().Capacity()) * m.Costs().PurgeEntry
		before := m.Cycles()
		m.InvalidatePage(1)
		if got := m.Cycles() - before; got != scan {
			t.Fatalf("InvalidatePage charged %d cycles, want capacity scan %d", got, scan)
		}
	})
}
