package machine

import (
	"repro/internal/addr"
	"repro/internal/fastpath"
	"repro/internal/plb"
	"repro/internal/tlb"
)

// This file is the machines' side of the verdict fast path
// (internal/fastpath): each organization keeps a per-machine verdict
// table keyed by (domain, VPN) and consults it before its structural
// access path. A verdict records *where* the structural entries that
// decided a prior access are resident; before replaying, the machine
// re-peeks those slots side-effect-free and falls through to the
// structural path on any divergence. A replayed hit then reproduces the
// structural warm-hit side effects — counters, cycles, LRU touches,
// dirty-bit transitions — exactly, so simulation output is byte-identical
// with the fast path on or off.
//
// Epochs: the kernel pushes a stamp (global + per-domain protection
// epoch) through FastPathed on every mutating path, and every machine
// maintenance operation bumps a machine-local epoch. Either advance
// orphans all cached verdicts in O(1).

// FastPathed is implemented by machines carrying a verdict fast-path
// table. The kernel uses it to push epoch stamps and purge per-CPU
// verdict state; reporting tools use it for hit-rate diagnostics.
type FastPathed interface {
	// SetFastPathKernelStamp installs the kernel's protection epoch stamp
	// for the machine's current domain; any change orphans all verdicts.
	SetFastPathKernelStamp(uint64)
	// PurgeFastPath orphans every cached verdict (per-CPU recovery,
	// quarantine rejoin).
	PurgeFastPath()
	// FastPathStats returns the table's outcome counts (host-side
	// diagnostics; never part of the simulated counters).
	FastPathStats() fastpath.Stats
}

// PLBVerdict is the PLB machine's cached verdict: the located PLB slot
// (and its key and rights) that decided a prior access to the page.
type PLBVerdict struct {
	Set, Way int32
	Key      plb.Key
	Rights   addr.Rights
}

// FastPath exposes the verdict table (oracle audits, chaos corruption).
func (m *PLBMachine) FastPath() *fastpath.Table[PLBVerdict] { return &m.fp }

// SetFastPathKernelStamp implements FastPathed.
func (m *PLBMachine) SetFastPathKernelStamp(s uint64) { m.fp.SetKernelStamp(s) }

// PurgeFastPath implements FastPathed.
func (m *PLBMachine) PurgeFastPath() { m.fp.BumpLocal() }

// FastPathStats implements FastPathed.
func (m *PLBMachine) FastPathStats() fastpath.Stats { return m.fp.Stats() }

// fastAccess attempts to serve the access from the verdict table,
// reporting whether it fully replayed a (non-faulting) warm hit.
func (m *PLBMachine) fastAccess(va addr.VA, kind addr.AccessKind) bool {
	vpn := m.cfg.Geometry.PageNumber(va)
	v, ok := m.fp.Probe(m.domain, vpn)
	if !ok {
		m.fp.Miss()
		return false
	}
	// A sub-page entry covers less than the whole VPN: the stored entry
	// must cover this exact address or the structural lookup could
	// resolve differently.
	if uint64(va)>>v.Key.Shift != v.Key.Page {
		m.fp.Miss()
		return false
	}
	r, ok := m.plb.PeekAt(int(v.Set), int(v.Way), v.Key)
	if !ok || r != v.Rights {
		// Evicted, purged, or diverged (e.g. chaos corruption): drop the
		// verdict and take the structural path.
		m.fp.Drop(m.domain, vpn)
		m.fp.Miss()
		return false
	}
	if !r.Allows(kind) {
		// Deny outcomes are never served from the fast path.
		m.fp.Miss()
		return false
	}
	cset, cway, ok := m.cache.ProbeLine(0, va)
	if !ok {
		m.fp.Miss() // line not resident: the structural path must fill
		return false
	}
	// Commit: replay the structural warm-hit side effects exactly.
	store := kind == addr.Store
	m.hAccesses.Inc()
	if store {
		m.hStores.Inc()
	}
	m.cycles.Add(m.cfg.Costs.CacheHit)
	m.plb.ReplayHit(int(v.Set), int(v.Way))
	m.cache.ReplayHit(cset, cway, 0, va, store)
	m.fp.Hit()
	return true
}

// installVerdict caches the located outcome of a just-completed
// non-faulting access in O(1): the structural path already recorded where
// its PLB entry lives (LastRef), and re-peeking that slot makes the
// stored rights reflect the live entry (including any chaos corruption
// applied during the access) — exactly what the structural path would see
// next. A non-cacheable resolve leaves LastRef pointing at an older
// access's entry; the domain and cover checks reject it (a live entry
// covering this (domain, va) would have been a Lookup hit).
func (m *PLBMachine) installVerdict(va addr.VA) {
	set, way, key := m.plb.LastRef()
	if key.Domain != m.domain || uint64(va)>>key.Shift != key.Page {
		return
	}
	r, ok := m.plb.PeekAt(set, way, key)
	if !ok {
		return
	}
	m.fp.Install(m.domain, m.cfg.Geometry.PageNumber(va), PLBVerdict{
		Set: int32(set), Way: int32(way), Key: key, Rights: r,
	})
}

// PGVerdict is the page-group machine's cached verdict: the located TLB
// slot, its full entry, and the checker's write-disable answer for the
// entry's group at install time.
type PGVerdict struct {
	Set, Way int32
	Entry    tlb.PGEntry
	WD       bool
}

// FastPath exposes the verdict table (oracle audits, chaos corruption).
func (m *PGMachine) FastPath() *fastpath.Table[PGVerdict] { return &m.fp }

// SetFastPathKernelStamp implements FastPathed.
func (m *PGMachine) SetFastPathKernelStamp(s uint64) { m.fp.SetKernelStamp(s) }

// PurgeFastPath implements FastPathed.
func (m *PGMachine) PurgeFastPath() { m.fp.BumpLocal() }

// FastPathStats implements FastPathed.
func (m *PGMachine) FastPathStats() fastpath.Stats { return m.fp.Stats() }

func (m *PGMachine) fastAccess(va addr.VA, kind addr.AccessKind) bool {
	vpn := m.cfg.Geometry.PageNumber(va)
	v, ok := m.fp.Probe(m.domain, vpn)
	if !ok {
		m.fp.Miss()
		return false
	}
	e, ok := m.tlb.PeekAt(int(v.Set), int(v.Way), vpn)
	if !ok || e != v.Entry {
		m.fp.Drop(m.domain, vpn)
		m.fp.Miss()
		return false
	}
	rights := e.Rights
	if e.AID != addr.GlobalGroup {
		ok, wd := m.checker.Peek(e.AID)
		if !ok || wd != v.WD {
			// Group not resident for the current domain (e.g. after a
			// domain switch purged the checker): the structural path
			// must take its reload trap.
			m.fp.Miss()
			return false
		}
		if wd {
			rights = rights.WithoutWrite()
		}
	}
	if !rights.Allows(kind) {
		m.fp.Miss()
		return false
	}
	cset, cway, ok := m.cache.ProbeLine(0, va)
	if !ok {
		m.fp.Miss()
		return false
	}
	store := kind == addr.Store
	m.hAccesses.Inc()
	if store {
		m.hStores.Inc()
	}
	m.cycles.Add(m.cfg.Costs.CacheHit + m.cfg.Costs.OnChipLookup)
	m.tlb.ReplayHit(int(v.Set), int(v.Way))
	if e.AID != addr.GlobalGroup {
		// Validated resident: Check replays the structural hit (counter
		// and any replacement touch) exactly.
		m.checker.Check(e.AID)
	}
	m.cache.ReplayHit(cset, cway, 0, va, store)
	m.fp.Hit()
	return true
}

func (m *PGMachine) installVerdict(va addr.VA) {
	vpn := m.cfg.Geometry.PageNumber(va)
	set, way, last := m.tlb.LastRef()
	if last != vpn {
		return
	}
	e, ok := m.tlb.PeekAt(set, way, vpn)
	if !ok {
		return
	}
	wd := false
	if e.AID != addr.GlobalGroup {
		var resident bool
		resident, wd = m.checker.Peek(e.AID)
		if !resident {
			return
		}
	}
	m.fp.Install(m.domain, vpn, PGVerdict{Set: int32(set), Way: int32(way), Entry: e, WD: wd})
}

// ConvVerdict is the conventional machine's cached verdict: the located
// combined-TLB slot and its full entry.
type ConvVerdict struct {
	Set, Way int32
	Entry    tlb.ASIDEntry
}

// FastPath exposes the verdict table (oracle audits, chaos corruption).
func (m *ConventionalMachine) FastPath() *fastpath.Table[ConvVerdict] { return &m.fp }

// SetFastPathKernelStamp implements FastPathed.
func (m *ConventionalMachine) SetFastPathKernelStamp(s uint64) { m.fp.SetKernelStamp(s) }

// PurgeFastPath implements FastPathed.
func (m *ConventionalMachine) PurgeFastPath() { m.fp.BumpLocal() }

// FastPathStats implements FastPathed.
func (m *ConventionalMachine) FastPathStats() fastpath.Stats { return m.fp.Stats() }

func (m *ConventionalMachine) fastAccess(va addr.VA, kind addr.AccessKind) bool {
	vpn := m.cfg.Geometry.PageNumber(va)
	v, ok := m.fp.Probe(m.domain, vpn)
	if !ok {
		m.fp.Miss()
		return false
	}
	as := m.asid()
	e, ok := m.tlb.PeekAt(int(v.Set), int(v.Way), as, vpn)
	if !ok || e != v.Entry {
		m.fp.Drop(m.domain, vpn)
		m.fp.Miss()
		return false
	}
	if !e.Rights.Allows(kind) {
		m.fp.Miss()
		return false
	}
	store := kind == addr.Store
	if m.vipt != nil {
		pa := addr.PA(uint64(e.PFN)<<m.cfg.Geometry.Shift() | m.cfg.Geometry.Offset(va))
		cset, cway, ok := m.vipt.ProbeLine(pa)
		if !ok {
			m.fp.Miss()
			return false
		}
		m.hAccesses.Inc()
		if store {
			m.hStores.Inc()
		}
		m.cycles.Add(m.cfg.Costs.CacheHit)
		m.tlb.ReplayHit(int(v.Set), int(v.Way))
		m.vipt.ReplayHit(cset, cway, pa, store)
		m.fp.Hit()
		return true
	}
	cset, cway, ok := m.cache.ProbeLine(as, va)
	if !ok {
		m.fp.Miss()
		return false
	}
	m.hAccesses.Inc()
	if store {
		m.hStores.Inc()
	}
	m.cycles.Add(m.cfg.Costs.CacheHit)
	m.tlb.ReplayHit(int(v.Set), int(v.Way))
	m.cache.ReplayHit(cset, cway, as, va, store)
	m.fp.Hit()
	return true
}

func (m *ConventionalMachine) installVerdict(va addr.VA) {
	vpn := m.cfg.Geometry.PageNumber(va)
	set, way, k := m.tlb.LastRef()
	if k.AS != m.asid() || k.VPN != vpn {
		return
	}
	e, ok := m.tlb.PeekAt(set, way, k.AS, k.VPN)
	if !ok {
		return
	}
	m.fp.Install(m.domain, vpn, ConvVerdict{Set: int32(set), Way: int32(way), Entry: e})
}

// FastPath exposes the inner machine's verdict table.
func (m *FlushMachine) FastPath() *fastpath.Table[ConvVerdict] { return &m.inner.fp }

// SetFastPathKernelStamp implements FastPathed.
func (m *FlushMachine) SetFastPathKernelStamp(s uint64) { m.inner.fp.SetKernelStamp(s) }

// PurgeFastPath implements FastPathed.
func (m *FlushMachine) PurgeFastPath() { m.inner.fp.BumpLocal() }

// FastPathStats implements FastPathed.
func (m *FlushMachine) FastPathStats() fastpath.Stats { return m.inner.fp.Stats() }

var (
	_ FastPathed = (*PLBMachine)(nil)
	_ FastPathed = (*PGMachine)(nil)
	_ FastPathed = (*ConventionalMachine)(nil)
	_ FastPathed = (*FlushMachine)(nil)
)
