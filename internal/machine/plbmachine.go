package machine

import (
	"repro/internal/addr"
	"repro/internal/assoc"
	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/fastpath"
	"repro/internal/plb"
	"repro/internal/stats"
	"repro/internal/tlb"
)

// PLBConfig configures a PLBMachine.
type PLBConfig struct {
	// Costs is the cycle cost model.
	Costs cpu.CostModel
	// PLB configures the protection lookaside buffer.
	PLB plb.Config
	// TLB configures the second-level, translation-only TLB. Being
	// off-chip it can be large (Section 3.2.1).
	TLB assoc.Config
	// Cache configures the VIVT data cache.
	Cache cache.Config
	// Geometry is the translation page geometry.
	Geometry addr.Geometry
}

// DefaultPLBConfig returns the baseline PLB machine used in
// EXPERIMENTS.md: 128-entry PLB, 1024-entry off-chip TLB, 64 KB cache.
func DefaultPLBConfig() PLBConfig {
	return PLBConfig{
		Costs:    cpu.DefaultCosts(),
		PLB:      plb.DefaultConfig(),
		TLB:      assoc.Config{Sets: 256, Ways: 4, Policy: assoc.LRU},
		Cache:    cache.DefaultConfig(),
		Geometry: addr.BaseGeometry(),
	}
}

// PLBMachine is the domain-page model implementation of Figure 1.
type PLBMachine struct {
	cfg    PLBConfig
	os     OS
	obs    ResidencyObserver // non-nil when the OS tracks sharers
	domain addr.DomainID     // the PD-ID register

	plb   *plb.PLB
	tlb   *tlb.TransTLB
	cache *cache.VirtualCache
	fp    fastpath.Table[PLBVerdict]

	ctrs   stats.Counters
	cycles stats.Cycles

	// Pre-resolved handles for the shared counter names bumped on the
	// reference path (resolved once in NewPLB, a single array add per
	// event thereafter).
	hAccesses, hStores, hSwitches, hSwitchCycles   stats.Handle
	hTrapPLB, hTrapTLB, hFaultProt, hFaultUnmapped stats.Handle
	hFaultAddressing                               stats.Handle
}

// NewPLB builds a PLB machine over the given OS. An invalid PLB
// configuration returns the *plb.ConfigError; MustPLB panics instead
// for known-good configurations (the defaults, test fixtures).
func NewPLB(cfg PLBConfig, os OS) (*PLBMachine, error) {
	m := &PLBMachine{cfg: cfg, os: os}
	m.obs, _ = os.(ResidencyObserver)
	p, err := plb.New(cfg.PLB, &m.ctrs, "plb")
	if err != nil {
		return nil, err
	}
	m.plb = p
	m.tlb = tlb.NewTrans(cfg.TLB, &m.ctrs, "tlb")
	m.cache = cache.NewVirtual(cfg.Cache, &m.ctrs, "cache")
	m.hAccesses = m.ctrs.Handle(CtrAccesses)
	m.hStores = m.ctrs.Handle(CtrStores)
	m.hSwitches = m.ctrs.Handle(CtrSwitches)
	m.hSwitchCycles = m.ctrs.Handle(CtrSwitchCycles)
	m.hTrapPLB = m.ctrs.Handle(CtrTrapPLBRefill)
	m.hTrapTLB = m.ctrs.Handle(CtrTrapTLBRefill)
	m.hFaultProt = m.ctrs.Handle(CtrFaultProt)
	m.hFaultUnmapped = m.ctrs.Handle(CtrFaultUnmapped)
	m.hFaultAddressing = m.ctrs.Handle(CtrFaultAddressing)
	return m, nil
}

// MustPLB is NewPLB for configurations known to be valid; it panics on
// a config error.
func MustPLB(cfg PLBConfig, os OS) *PLBMachine {
	m, err := NewPLB(cfg, os)
	if err != nil {
		panic(err)
	}
	return m
}

// Name implements Machine.
func (m *PLBMachine) Name() string { return "plb" }

// Domain implements Machine.
func (m *PLBMachine) Domain() addr.DomainID { return m.domain }

// Counters implements Machine.
func (m *PLBMachine) Counters() *stats.Counters { return &m.ctrs }

// Cycles implements Machine.
func (m *PLBMachine) Cycles() uint64 { return m.cycles.Total() }

// Costs implements Machine.
func (m *PLBMachine) Costs() cpu.CostModel { return m.cfg.Costs }

// PLB exposes the protection lookaside buffer for inspection by
// experiments.
func (m *PLBMachine) PLB() *plb.PLB { return m.plb }

// TLB exposes the second-level TLB for inspection.
func (m *PLBMachine) TLB() *tlb.TransTLB { return m.tlb }

// Cache exposes the data cache for inspection.
func (m *PLBMachine) Cache() *cache.VirtualCache { return m.cache }

// SwitchDomain implements Machine. On the PLB machine a protection domain
// switch writes one control register — the PD-ID — and nothing else: no
// PLB, TLB or cache state is purged (Section 4.1.4).
func (m *PLBMachine) SwitchDomain(d addr.DomainID) {
	m.domain = d
	m.hSwitches.Inc()
	m.hSwitchCycles.Add(m.cfg.Costs.RegisterWrite)
	m.cycles.Add(m.cfg.Costs.RegisterWrite)
}

// Access implements Machine: the Figure 1 reference path, fronted by the
// verdict fast path (which replays warm hits with identical side effects
// or falls through to the structural path).
func (m *PLBMachine) Access(va addr.VA, kind addr.AccessKind) cpu.Outcome {
	if fastpath.Enabled() {
		if m.fastAccess(va, kind) {
			return cpu.Outcome{}
		}
		before := m.cycles.Total()
		out := m.slowAccess(va, kind)
		// Cache a verdict only for pure warm hits (exactly one cache-hit
		// charge): anything slower touched a miss path whose next access
		// is not a warm replay, so installing would be wasted churn —
		// machines that never warm-hit never even allocate a table.
		if out.Fault == cpu.FaultNone && m.cycles.Total()-before == m.cfg.Costs.CacheHit {
			m.installVerdict(va)
		}
		return out
	}
	return m.slowAccess(va, kind)
}

// slowAccess is the structural Figure 1 reference path. The PLB and the
// VIVT cache are probed in parallel, so a PLB hit adds no latency beyond
// the cache access; translation happens only on cache misses and dirty
// writebacks, through the off-critical-path TLB.
func (m *PLBMachine) slowAccess(va addr.VA, kind addr.AccessKind) cpu.Outcome {
	c := &m.cfg.Costs
	m.hAccesses.Inc()
	if kind == addr.Store {
		m.hStores.Inc()
	}
	m.cycles.Add(c.CacheHit) // cache + PLB probed in parallel

	// Protection: PLB lookup, refilled by the kernel on a miss.
	rights, hit := m.plb.Lookup(m.domain, va)
	if !hit {
		m.hTrapPLB.Inc()
		m.cycles.Add(c.Trap)
		resolved, cacheable, ok := m.os.ResolveRights(m.domain, m.cfg.Geometry.PageNumber(va))
		if !ok {
			m.hFaultAddressing.Inc()
			return cpu.Outcome{Fault: cpu.FaultNoAuthority}
		}
		if cacheable {
			// The kernel installs the resolved rights — including None,
			// so repeated illegal references by an attached domain fault
			// on a resident entry rather than re-resolving (e.g. the
			// GC's no-access from-space pages). Domains with no record
			// at all get nothing installed: a later grant must not have
			// to hunt down cached denials.
			shift := uint(m.cfg.Geometry.Shift())
			if ps, ok := m.os.(ProtShifter); ok {
				shift = ps.ProtShift(m.domain, m.cfg.Geometry.PageNumber(va))
			}
			m.plb.Insert(m.domain, va, shift, resolved)
			m.cycles.Add(c.Install)
			if m.obs != nil {
				m.obs.NoteProtInstall(m.domain, m.cfg.Geometry.PageNumber(va))
			}
		}
		rights = resolved
	}
	if !rights.Allows(kind) {
		m.hFaultProt.Inc()
		m.cycles.Add(c.Trap)
		return cpu.Outcome{Fault: cpu.FaultProtection}
	}

	// Data: VIVT cache; translation only on a miss.
	if m.cache.Access(0, va, kind == addr.Store) {
		return cpu.Outcome{}
	}
	pfn, ok := m.translate(m.cfg.Geometry.PageNumber(va))
	if !ok {
		m.hFaultUnmapped.Inc()
		return cpu.Outcome{Fault: cpu.FaultPageUnmapped}
	}
	m.cycles.Add(c.CacheFill)
	if wroteBack := m.cache.Fill(0, va, pfn, kind == addr.Store); wroteBack {
		// Writing back a dirty victim needs its translation: one more
		// off-chip TLB reference.
		m.cycles.Add(c.Writeback + c.OffChipTLB)
	}
	return cpu.Outcome{}
}

// translate consults the off-chip TLB, trapping to the kernel on a miss.
func (m *PLBMachine) translate(vpn addr.VPN) (addr.PFN, bool) {
	c := &m.cfg.Costs
	m.cycles.Add(c.OffChipTLB)
	if e, ok := m.tlb.Lookup(vpn); ok {
		return e.PFN, true
	}
	m.hTrapTLB.Inc()
	m.cycles.Add(c.Trap + c.PTWalk)
	pfn, ok := m.os.Translate(vpn)
	if !ok {
		return 0, false
	}
	m.tlb.Insert(vpn, tlb.TransEntry{PFN: pfn})
	m.cycles.Add(c.Install)
	if m.obs != nil {
		m.obs.NotePageInstall(vpn)
	}
	return pfn, true
}

// Maintenance operations used by the kernel's domain-page protection
// engine. Each charges its architectural cost and returns the number of
// resident entries it touched, so the shootdown subsystem can attribute
// remote invalidation traffic precisely.

// UpdateRights rewrites the resident PLB entry for (d, va) if present —
// the cheap single-entry update of Section 4.1.2. When the entry is not
// resident nothing is done; the new rights will fault in lazily.
func (m *PLBMachine) UpdateRights(d addr.DomainID, va addr.VA, r addr.Rights) int {
	if m.plb.Update(d, va, r) {
		m.cycles.Add(m.cfg.Costs.Install)
		return 1
	}
	return 0
}

// InstallRights eagerly inserts a PLB entry (used when the kernel chooses
// to pre-load rather than fault-in, and by sub-page experiments that
// install at non-default shifts).
func (m *PLBMachine) InstallRights(d addr.DomainID, va addr.VA, shift uint, r addr.Rights) {
	// An eager insert can add a second entry covering an address a cached
	// verdict's entry also covers (multi-size configurations), changing
	// which entry a structural lookup finds first — the one mutation slot
	// validation cannot see. Orphan the table.
	m.fp.BumpLocal()
	m.plb.Insert(d, va, shift, r)
	m.cycles.Add(m.cfg.Costs.Install)
	if m.obs != nil {
		m.obs.NoteProtInstall(d, m.cfg.Geometry.PageNumber(va))
	}
}

// InvalidateRights drops the PLB entry for (d, va) if resident (at
// every configured size class).
func (m *PLBMachine) InvalidateRights(d addr.DomainID, va addr.VA) int {
	if m.plb.Invalidate(d, va) {
		m.cycles.Add(m.cfg.Costs.PurgeEntry)
		return 1
	}
	return 0
}

// UpdateRange rewrites all of d's resident PLB entries overlapping the
// range to the given rights — the segment-wide per-domain rights change of
// Table 1 (GC flip, checkpoint restrict). The whole PLB is scanned: an
// entry-by-entry hardware scan inspects every slot, valid or not
// (§4.1.1 "inspect each entry"), so the charge covers the full capacity.
func (m *PLBMachine) UpdateRange(d addr.DomainID, start addr.VA, length uint64, r addr.Rights) int {
	n := m.plb.UpdateRange(d, start, length, r)
	m.cycles.Add(uint64(m.plb.Capacity()) * m.cfg.Costs.PurgeEntry)
	return n
}

// PurgeAllPLB flash-clears the whole PLB in one operation — the cheap
// but indiscriminate detach alternative of Section 4.1.1 ("Purge the PLB
// or inspect each entry..."): every domain's rights must fault back in.
func (m *PLBMachine) PurgeAllPLB() int {
	n := m.plb.PurgeAll()
	m.cycles.Add(m.cfg.Costs.RegisterWrite)
	return n
}

// DetachRange purges all of d's PLB entries overlapping the range: the
// segment-detach scan of Section 4.1.1. Every PLB slot is inspected, so
// the scan costs capacity x per-entry purge regardless of occupancy.
func (m *PLBMachine) DetachRange(d addr.DomainID, start addr.VA, length uint64) int {
	n := m.plb.PurgeRange(d, start, length)
	m.cycles.Add(uint64(m.plb.Capacity()) * m.cfg.Costs.PurgeEntry)
	return n
}

// PurgeDomain drops every PLB entry of domain d — the domain-destroy
// scan. Like the other scan operations, every slot is inspected whether
// or not it belongs to d, so the charge covers the full capacity.
func (m *PLBMachine) PurgeDomain(d addr.DomainID) int {
	n := m.plb.PurgeDomain(d)
	m.cycles.Add(uint64(m.plb.Capacity()) * m.cfg.Costs.PurgeEntry)
	return n
}

// PurgePage removes every domain's PLB entries for the page holding va
// (used when rights change for all domains at once). Like the other scan
// operations this inspects every slot of the PLB.
func (m *PLBMachine) PurgePage(va addr.VA) int {
	n := m.plb.PurgePage(va)
	m.cycles.Add(uint64(m.plb.Capacity()) * m.cfg.Costs.PurgeEntry)
	return n
}

// UnmapPage destroys the translation for vpn: the TLB entry is
// invalidated and the page's lines are flushed from the data cache
// (Section 4.1.3). The PLB needs no maintenance — stale entries age out,
// and any touch faults on the missing translation.
func (m *PLBMachine) UnmapPage(vpn addr.VPN) int {
	c := &m.cfg.Costs
	n := 0
	if m.tlb.Invalidate(vpn) {
		m.cycles.Add(c.PurgeEntry)
		n = 1
	}
	flushed, dirty := m.cache.FlushPage(m.cfg.Geometry.Base(vpn), m.cfg.Geometry)
	m.cycles.Add(uint64(m.cache.LinesPerPage(m.cfg.Geometry)) * c.CacheLineFlush)
	m.cycles.Add(uint64(dirty) * c.Writeback)
	_ = flushed
	return n
}

// FlushDataCache flushes every line of the VIVT data cache, charging
// the per-line flush and writeback costs. Part of a bulk invalidation:
// a virtually-tagged line hits without consulting translation, so the
// proof that a purged CPU holds nothing must cover the cache, or a
// stale line would satisfy an access to a page that is no longer
// mapped.
func (m *PLBMachine) FlushDataCache() int {
	flushed, dirty := m.cache.FlushAll()
	m.cycles.Add(uint64(flushed)*m.cfg.Costs.CacheLineFlush + uint64(dirty)*m.cfg.Costs.Writeback)
	return flushed
}

// Geometry returns the machine's translation page geometry.
func (m *PLBMachine) Geometry() addr.Geometry { return m.cfg.Geometry }

var _ Machine = (*PLBMachine)(nil)
