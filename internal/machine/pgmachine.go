package machine

import (
	"repro/internal/addr"
	"repro/internal/assoc"
	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/fastpath"
	"repro/internal/pgroup"
	"repro/internal/stats"
	"repro/internal/tlb"
)

// PGCheckerKind selects the page-group check structure.
type PGCheckerKind uint8

const (
	// PGCheckerLRUCache is the Wilkes-Sears LRU cache of page-groups, the
	// variant the paper assumes for its comparison (Section 3.2.2).
	PGCheckerLRUCache PGCheckerKind = iota
	// PGCheckerPIDRegisters is the real PA-RISC's four-register file.
	PGCheckerPIDRegisters
)

// PGConfig configures a PGMachine.
type PGConfig struct {
	// Costs is the cycle cost model.
	Costs cpu.CostModel
	// TLB configures the on-chip page-group TLB. To allow a fair
	// comparison the paper gives it the same entry count as the PLB.
	TLB assoc.Config
	// Checker selects PID registers or the LRU group cache.
	Checker PGCheckerKind
	// CheckerEntries is the group capacity (4 for real PA-RISC
	// registers; larger for the LRU cache).
	CheckerEntries int
	// EagerReload, when set, reloads the page-group cache with the new
	// domain's groups on a switch instead of faulting them in lazily
	// (the performance option of Section 4.1.4).
	EagerReload bool
	// Cache configures the VIVT data cache.
	Cache cache.Config
	// Geometry is the translation page geometry.
	Geometry addr.Geometry
}

// DefaultPGConfig returns the baseline page-group machine: a 128-entry
// TLB (matching the default PLB's entry count, per the paper's fairness
// assumption), a 16-entry LRU group cache, lazy reload.
func DefaultPGConfig() PGConfig {
	return PGConfig{
		Costs:          cpu.DefaultCosts(),
		TLB:            assoc.Config{Sets: 1, Ways: 128, Policy: assoc.LRU},
		Checker:        PGCheckerLRUCache,
		CheckerEntries: 16,
		Cache:          cache.DefaultConfig(),
		Geometry:       addr.BaseGeometry(),
	}
}

// PGMachine is the page-group model implementation of Figure 2.
type PGMachine struct {
	cfg    PGConfig
	os     OS
	obs    ResidencyObserver // non-nil when the OS tracks sharers
	domain addr.DomainID

	tlb     *tlb.PGTLB
	checker pgroup.Checker
	cache   *cache.VirtualCache
	fp      fastpath.Table[PGVerdict]

	ctrs   stats.Counters
	cycles stats.Cycles

	// Pre-resolved handles for the counters bumped on the reference path.
	hAccesses, hStores, hSwitches, hSwitchCycles  stats.Handle
	hTrapTLB, hTrapPG, hFaultProt, hFaultUnmapped stats.Handle
	hFaultAddressing                              stats.Handle
}

// NewPG builds a page-group machine over the given OS.
func NewPG(cfg PGConfig, os OS) *PGMachine {
	m := &PGMachine{cfg: cfg, os: os}
	m.obs, _ = os.(ResidencyObserver)
	m.tlb = tlb.NewPG(cfg.TLB, &m.ctrs, "pgtlb")
	switch cfg.Checker {
	case PGCheckerPIDRegisters:
		m.checker = pgroup.NewPIDRegisters(cfg.CheckerEntries, &m.ctrs, "pgc")
	default:
		m.checker = pgroup.NewGroupCache(
			assoc.Config{Sets: 1, Ways: cfg.CheckerEntries, Policy: assoc.LRU},
			&m.ctrs, "pgc")
	}
	m.cache = cache.NewVirtual(cfg.Cache, &m.ctrs, "cache")
	m.hAccesses = m.ctrs.Handle(CtrAccesses)
	m.hStores = m.ctrs.Handle(CtrStores)
	m.hSwitches = m.ctrs.Handle(CtrSwitches)
	m.hSwitchCycles = m.ctrs.Handle(CtrSwitchCycles)
	m.hTrapTLB = m.ctrs.Handle(CtrTrapTLBRefill)
	m.hTrapPG = m.ctrs.Handle(CtrTrapPGRefill)
	m.hFaultProt = m.ctrs.Handle(CtrFaultProt)
	m.hFaultUnmapped = m.ctrs.Handle(CtrFaultUnmapped)
	m.hFaultAddressing = m.ctrs.Handle(CtrFaultAddressing)
	return m
}

// Name implements Machine.
func (m *PGMachine) Name() string { return "page-group" }

// Domain implements Machine.
func (m *PGMachine) Domain() addr.DomainID { return m.domain }

// Counters implements Machine.
func (m *PGMachine) Counters() *stats.Counters { return &m.ctrs }

// Cycles implements Machine.
func (m *PGMachine) Cycles() uint64 { return m.cycles.Total() }

// Costs implements Machine.
func (m *PGMachine) Costs() cpu.CostModel { return m.cfg.Costs }

// TLB exposes the page-group TLB for inspection.
func (m *PGMachine) TLB() *tlb.PGTLB { return m.tlb }

// Checker exposes the page-group check structure for inspection.
func (m *PGMachine) Checker() pgroup.Checker { return m.checker }

// Cache exposes the data cache for inspection.
func (m *PGMachine) Cache() *cache.VirtualCache { return m.cache }

// Geometry returns the machine's translation page geometry.
func (m *PGMachine) Geometry() addr.Geometry { return m.cfg.Geometry }

// SwitchDomain implements Machine. The page-group set is per-domain state:
// the checker is purged and, under EagerReload, refilled from the new
// domain's group list (Section 4.1.4).
func (m *PGMachine) SwitchDomain(d addr.DomainID) {
	c := &m.cfg.Costs
	m.domain = d
	m.hSwitches.Inc()
	var cost uint64 = c.RegisterWrite
	purged := m.checker.PurgeAll()
	cost += uint64(purged) * c.PurgeEntry
	if m.cfg.EagerReload {
		for i, g := range m.os.DomainGroups(d) {
			if i >= m.checker.Capacity() {
				break
			}
			m.checker.Load(g.Group, g.WriteDisable)
			cost += c.Install
		}
	}
	m.hSwitchCycles.Add(cost)
	m.cycles.Add(cost)
}

// Access implements Machine: the Figure 2 reference path, fronted by the
// verdict fast path (which replays warm hits with identical side effects
// or falls through to the structural path).
func (m *PGMachine) Access(va addr.VA, kind addr.AccessKind) cpu.Outcome {
	if fastpath.Enabled() {
		if m.fastAccess(va, kind) {
			return cpu.Outcome{}
		}
		before := m.cycles.Total()
		out := m.slowAccess(va, kind)
		// Warm hits charge exactly cache hit + on-chip group check; only
		// those produce verdicts worth replaying (see PLBMachine.Access).
		if out.Fault == cpu.FaultNone &&
			m.cycles.Total()-before == m.cfg.Costs.CacheHit+m.cfg.Costs.OnChipLookup {
			m.installVerdict(va)
		}
		return out
	}
	return m.slowAccess(va, kind)
}

// slowAccess is the structural Figure 2 reference path. The TLB must be
// consulted on every reference to obtain the AID, then the page-group
// check runs sequentially on its result — the dependent second lookup of
// Section 4.2, charged as extra latency on every access.
func (m *PGMachine) slowAccess(va addr.VA, kind addr.AccessKind) cpu.Outcome {
	c := &m.cfg.Costs
	m.hAccesses.Inc()
	if kind == addr.Store {
		m.hStores.Inc()
	}
	// Cache and TLB probe in parallel; the page-group check serializes
	// after the TLB and adds its latency to every reference.
	m.cycles.Add(c.CacheHit + c.OnChipLookup)

	vpn := m.cfg.Geometry.PageNumber(va)
	entry, hit := m.tlb.Lookup(vpn)
	if !hit {
		m.hTrapTLB.Inc()
		m.cycles.Add(c.Trap + c.PTWalk)
		pfn, ok := m.os.Translate(vpn)
		if !ok {
			m.hFaultUnmapped.Inc()
			return cpu.Outcome{Fault: cpu.FaultPageUnmapped}
		}
		aid, rights, ok := m.os.PageInfo(vpn)
		if !ok {
			m.hFaultAddressing.Inc()
			return cpu.Outcome{Fault: cpu.FaultNoAuthority}
		}
		entry = tlb.PGEntry{PFN: pfn, AID: aid, Rights: rights}
		m.tlb.Insert(vpn, entry)
		m.cycles.Add(c.Install)
		if m.obs != nil {
			m.obs.NotePageInstall(vpn)
		}
	}

	// Page-group check: AID 0 is global; otherwise the group must be in
	// the current domain's set.
	rights := entry.Rights
	if entry.AID != addr.GlobalGroup {
		ok, writeDisabled := m.checker.Check(entry.AID)
		if !ok {
			// Trap: the kernel decides whether the domain may access the
			// group at all.
			m.hTrapPG.Inc()
			m.cycles.Add(c.Trap)
			allowed, wd := m.os.DomainGroup(m.domain, entry.AID)
			if !allowed {
				m.hFaultProt.Inc()
				return cpu.Outcome{Fault: cpu.FaultProtection}
			}
			m.checker.Load(entry.AID, wd)
			m.cycles.Add(c.Install)
			writeDisabled = wd
		}
		if writeDisabled {
			rights = rights.WithoutWrite()
		}
	}
	if !rights.Allows(kind) {
		m.hFaultProt.Inc()
		m.cycles.Add(c.Trap)
		return cpu.Outcome{Fault: cpu.FaultProtection}
	}

	// Data: VIVT cache. The translation is already in hand from the TLB,
	// so a miss costs only the fill.
	if m.cache.Access(0, va, kind == addr.Store) {
		return cpu.Outcome{}
	}
	m.cycles.Add(c.CacheFill)
	if wroteBack := m.cache.Fill(0, va, entry.PFN, kind == addr.Store); wroteBack {
		m.cycles.Add(c.Writeback)
	}
	return cpu.Outcome{}
}

// Maintenance operations used by the kernel's page-group protection
// engine.

// UpdatePage rewrites the resident TLB entry for vpn — changing its
// rights field or moving it to another page-group. One entry serves all
// domains, which is what makes all-domain changes cheap (Section 4.1.2).
func (m *PGMachine) UpdatePage(vpn addr.VPN, aid addr.GroupID, rights addr.Rights) int {
	// A page's group assignment is shared by every domain, so this
	// maintenance op can stale verdicts cached under domains other than
	// the one whose mutation triggered it (whose epoch the kernel bumps).
	// The machine-local bump orphans those too.
	m.fp.BumpLocal()
	pfn, ok := m.os.Translate(vpn)
	if !ok {
		// No translation: nothing can be resident.
		return 0
	}
	if m.tlb.Update(vpn, tlb.PGEntry{PFN: pfn, AID: aid, Rights: rights}) {
		m.cycles.Add(m.cfg.Costs.Install)
		return 1
	}
	return 0
}

// AttachGroup loads group g into the checker if d is the executing domain
// (a newly attached segment's group becomes visible immediately;
// otherwise it loads on the domain's next run).
func (m *PGMachine) AttachGroup(d addr.DomainID, g addr.GroupID, writeDisabled bool) int {
	if d == m.domain {
		m.checker.Load(g, writeDisabled)
		m.cycles.Add(m.cfg.Costs.Install)
		return 1
	}
	return 0
}

// DetachGroup removes group g from the checker if d is the executing
// domain (segment detach: one group purge, no scan — the page-group
// model's cheap detach of Section 4.1.1).
func (m *PGMachine) DetachGroup(d addr.DomainID, g addr.GroupID) int {
	if d == m.domain && m.checker.Remove(g) {
		m.cycles.Add(m.cfg.Costs.PurgeEntry)
		return 1
	}
	return 0
}

// UnmapPage destroys the translation for vpn: the TLB entry is
// invalidated and the page's cache lines flushed (Section 4.1.3).
func (m *PGMachine) UnmapPage(vpn addr.VPN) int {
	m.fp.BumpLocal()
	c := &m.cfg.Costs
	n := 0
	if m.tlb.Invalidate(vpn) {
		m.cycles.Add(c.PurgeEntry)
		n = 1
	}
	_, dirty := m.cache.FlushPage(m.cfg.Geometry.Base(vpn), m.cfg.Geometry)
	m.cycles.Add(uint64(m.cache.LinesPerPage(m.cfg.Geometry)) * c.CacheLineFlush)
	m.cycles.Add(uint64(dirty) * c.Writeback)
	return n
}

// FlushDataCache flushes every line of the VIVT data cache, charging
// the per-line flush and writeback costs (see PLBMachine.FlushDataCache:
// virtually-tagged lines hit without translation, so bulk invalidation
// must cover them).
func (m *PGMachine) FlushDataCache() int {
	flushed, dirty := m.cache.FlushAll()
	m.cycles.Add(uint64(flushed)*m.cfg.Costs.CacheLineFlush + uint64(dirty)*m.cfg.Costs.Writeback)
	return flushed
}

var _ Machine = (*PGMachine)(nil)
