package machine

import (
	"repro/internal/addr"
	"repro/internal/assoc"
	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/fastpath"
	"repro/internal/stats"
	"repro/internal/tlb"
)

// ConvCacheOrg selects the conventional machine's data cache
// organization (the multiple-address-space choices of Section 2.2).
type ConvCacheOrg uint8

const (
	// ConvCacheVIVTASID is a virtually indexed, virtually tagged cache
	// with ASID-extended tags: no flushes, but synonyms for shared pages.
	ConvCacheVIVTASID ConvCacheOrg = iota
	// ConvCacheVIPT is a virtually indexed, physically tagged cache: no
	// flushes, no synonyms, no homonyms — but its geometry is
	// constrained (index+line bits must fit the page offset) and every
	// hit depends on the TLB's tag.
	ConvCacheVIPT
)

// ConvConfig configures the conventional and flush machines.
type ConvConfig struct {
	// Costs is the cycle cost model.
	Costs cpu.CostModel
	// TLB configures the combined (translation + protection) TLB.
	TLB assoc.Config
	// Cache configures the data cache. For the ASID machine the cache is
	// VIVT with ASID-extended tags; for the flush machine it is plain
	// VIVT, flushed on every switch.
	Cache cache.Config
	// CacheOrg selects VIVT-with-ASID-tags or VIPT.
	CacheOrg ConvCacheOrg
	// Geometry is the translation page geometry.
	Geometry addr.Geometry
}

// DefaultConvConfig returns the baseline conventional machine: a
// 128-entry ASID-tagged TLB and a 64 KB VIVT cache with ASID tags.
func DefaultConvConfig() ConvConfig {
	c := cache.DefaultConfig()
	c.ASIDTags = true
	return ConvConfig{
		Costs:    cpu.DefaultCosts(),
		TLB:      assoc.Config{Sets: 1, Ways: 128, Policy: assoc.LRU},
		Cache:    c,
		Geometry: addr.BaseGeometry(),
	}
}

// ConventionalMachine is the multiple-address-space baseline of Section
// 3.1: an ASID-tagged combined TLB refilled from per-address-space page
// tables, and a VIVT cache with ASID-extended tags (so it need not flush
// on switches, at the price of synonym duplication for shared pages).
//
// When it runs a single address space OS, each protection domain maps to
// one ASID — and every shared page occupies one TLB entry per domain, the
// duplication experiment E5 measures.
type ConventionalMachine struct {
	cfg    ConvConfig
	os     MultiOS
	obs    ResidencyObserver // non-nil when the OS tracks sharers
	domain addr.DomainID

	tlb   *tlb.ASIDTLB
	cache *cache.VirtualCache  // VIVT-ASID organization
	vipt  *cache.PhysicalCache // VIPT organization
	fp    fastpath.Table[ConvVerdict]

	ctrs   stats.Counters
	cycles stats.Cycles

	// Pre-resolved handles for the counters bumped on the reference path.
	hAccesses, hStores, hSwitches, hSwitchCycles stats.Handle
	hTrapTLB, hFaultProt, hFaultUnmapped         stats.Handle
}

// NewConventional builds a conventional machine over per-space tables.
// It panics if a VIPT organization is requested with a geometry whose
// index does not fit the page offset (the architectural constraint).
func NewConventional(cfg ConvConfig, os MultiOS) *ConventionalMachine {
	m := &ConventionalMachine{cfg: cfg, os: os}
	m.obs, _ = os.(ResidencyObserver)
	m.tlb = tlb.NewASID(cfg.TLB, &m.ctrs, "tlb")
	if cfg.CacheOrg == ConvCacheVIPT {
		if !cache.ValidVIPT(cfg.Cache, cfg.Geometry) {
			panic("machine: VIPT cache index does not fit the page offset")
		}
		m.vipt = cache.NewPhysical(cfg.Cache, &m.ctrs, "cache")
	} else {
		m.cache = cache.NewVirtual(cfg.Cache, &m.ctrs, "cache")
	}
	m.hAccesses = m.ctrs.Handle(CtrAccesses)
	m.hStores = m.ctrs.Handle(CtrStores)
	m.hSwitches = m.ctrs.Handle(CtrSwitches)
	m.hSwitchCycles = m.ctrs.Handle(CtrSwitchCycles)
	m.hTrapTLB = m.ctrs.Handle(CtrTrapTLBRefill)
	m.hFaultProt = m.ctrs.Handle(CtrFaultProt)
	m.hFaultUnmapped = m.ctrs.Handle(CtrFaultUnmapped)
	return m
}

// DefaultVIPTConvConfig returns a conventional machine with a 64 KB VIPT
// cache: 128 sets (the most 4 KB pages allow with 32-byte lines) of 16
// ways — size bought with associativity, per footnote 3.
func DefaultVIPTConvConfig() ConvConfig {
	cfg := DefaultConvConfig()
	cfg.CacheOrg = ConvCacheVIPT
	cfg.Cache = cache.Config{
		LineShift: 5,
		Assoc:     assoc.Config{Sets: 128, Ways: 16, Policy: assoc.LRU},
	}
	return cfg
}

// Name implements Machine.
func (m *ConventionalMachine) Name() string { return "conventional" }

// Domain implements Machine.
func (m *ConventionalMachine) Domain() addr.DomainID { return m.domain }

// Counters implements Machine.
func (m *ConventionalMachine) Counters() *stats.Counters { return &m.ctrs }

// Cycles implements Machine.
func (m *ConventionalMachine) Cycles() uint64 { return m.cycles.Total() }

// Costs implements Machine.
func (m *ConventionalMachine) Costs() cpu.CostModel { return m.cfg.Costs }

// TLB exposes the combined TLB for inspection.
func (m *ConventionalMachine) TLB() *tlb.ASIDTLB { return m.tlb }

// Cache exposes the VIVT data cache for inspection (nil under VIPT).
func (m *ConventionalMachine) Cache() *cache.VirtualCache { return m.cache }

// VIPTCache exposes the VIPT data cache for inspection (nil under
// VIVT-ASID).
func (m *ConventionalMachine) VIPTCache() *cache.PhysicalCache { return m.vipt }

// asid maps the executing domain to its address space identifier.
func (m *ConventionalMachine) asid() addr.ASID { return addr.ASID(m.domain) }

// SwitchDomain implements Machine: with ASID tags a switch is one
// register write, like the PLB machine — but shared pages pay for it with
// duplicated TLB entries and cache synonyms.
func (m *ConventionalMachine) SwitchDomain(d addr.DomainID) {
	m.domain = d
	m.hSwitches.Inc()
	m.hSwitchCycles.Add(m.cfg.Costs.RegisterWrite)
	m.cycles.Add(m.cfg.Costs.RegisterWrite)
}

// Access implements Machine: the combined-TLB reference path, fronted by
// the verdict fast path (which replays warm hits with identical side
// effects or falls through to the structural path).
func (m *ConventionalMachine) Access(va addr.VA, kind addr.AccessKind) cpu.Outcome {
	if fastpath.Enabled() {
		if m.fastAccess(va, kind) {
			return cpu.Outcome{}
		}
		before := m.cycles.Total()
		out := m.slowAccess(va, kind)
		// Warm hits charge exactly one cache hit; only those produce
		// verdicts worth replaying (see PLBMachine.Access).
		if out.Fault == cpu.FaultNone && m.cycles.Total()-before == m.cfg.Costs.CacheHit {
			m.installVerdict(va)
		}
		return out
	}
	return m.slowAccess(va, kind)
}

// slowAccess is the structural reference path. Protection comes from the
// combined TLB, probed in parallel with the (virtually indexed,
// ASID-tagged) cache.
func (m *ConventionalMachine) slowAccess(va addr.VA, kind addr.AccessKind) cpu.Outcome {
	c := &m.cfg.Costs
	m.hAccesses.Inc()
	if kind == addr.Store {
		m.hStores.Inc()
	}
	m.cycles.Add(c.CacheHit)

	vpn := m.cfg.Geometry.PageNumber(va)
	entry, hit := m.tlb.Lookup(m.asid(), vpn)
	if !hit {
		m.hTrapTLB.Inc()
		m.cycles.Add(c.Trap + c.PTWalk)
		pte, ok := m.os.Walk(m.asid(), vpn)
		if !ok {
			m.hFaultUnmapped.Inc()
			return cpu.Outcome{Fault: cpu.FaultPageUnmapped}
		}
		entry = tlb.ASIDEntry{PFN: pte.PFN, Rights: pte.Rights}
		m.tlb.Insert(m.asid(), vpn, entry)
		m.cycles.Add(c.Install)
		if m.obs != nil {
			// A combined-TLB entry carries both the domain's rights and
			// the translation, so it feeds both directory axes.
			m.obs.NoteProtInstall(m.domain, vpn)
			m.obs.NotePageInstall(vpn)
		}
	}
	if !entry.Rights.Allows(kind) {
		m.hFaultProt.Inc()
		m.cycles.Add(c.Trap)
		return cpu.Outcome{Fault: cpu.FaultProtection}
	}

	if m.vipt != nil {
		// VIPT: indexing begins from untranslated bits; the physical tag
		// comes from the TLB entry already in hand.
		pa := addr.PA(uint64(entry.PFN)<<m.cfg.Geometry.Shift() | m.cfg.Geometry.Offset(va))
		if m.vipt.Access(pa, kind == addr.Store) {
			return cpu.Outcome{}
		}
		m.cycles.Add(c.CacheFill)
		if wroteBack := m.vipt.Fill(pa, kind == addr.Store); wroteBack {
			m.cycles.Add(c.Writeback)
		}
		return cpu.Outcome{}
	}
	if m.cache.Access(m.asid(), va, kind == addr.Store) {
		return cpu.Outcome{}
	}
	m.cycles.Add(c.CacheFill)
	if wroteBack := m.cache.Fill(m.asid(), va, entry.PFN, kind == addr.Store); wroteBack {
		m.cycles.Add(c.Writeback)
	}
	return cpu.Outcome{}
}

// InvalidatePage purges every address space's TLB entry for vpn — what a
// mapping change to a shared page costs on this architecture (the scan of
// Section 3.1).
func (m *ConventionalMachine) InvalidatePage(vpn addr.VPN) int {
	n := m.tlb.PurgePage(vpn)
	// An entry-by-entry hardware scan inspects every TLB slot, valid or
	// not, so the charge covers the full capacity.
	m.cycles.Add(uint64(m.tlb.Capacity()) * m.cfg.Costs.PurgeEntry)
	return n
}

// SetRights updates the resident TLB entry for (as, vpn); absent entries
// refill from the page tables on next touch.
func (m *ConventionalMachine) SetRights(as addr.ASID, vpn addr.VPN, r addr.Rights) int {
	if e, ok := m.tlb.Lookup(as, vpn); ok {
		e.Rights = r
		m.tlb.Insert(as, vpn, e)
		m.cycles.Add(m.cfg.Costs.Install)
		return 1
	}
	return 0
}

// PurgeASID drops every TLB entry tagged with address space as — the
// address-space teardown primitive (domain destroy). One full-TLB scan
// replaces the per-page InvalidateEntry storm a destroy would otherwise
// issue, so the charge covers the full capacity once.
func (m *ConventionalMachine) PurgeASID(as addr.ASID) int {
	n := m.tlb.PurgeAS(as)
	m.cycles.Add(uint64(m.tlb.Capacity()) * m.cfg.Costs.PurgeEntry)
	return n
}

// InvalidateEntry drops one space's TLB entry for vpn (detach and
// per-space protection revocation).
func (m *ConventionalMachine) InvalidateEntry(as addr.ASID, vpn addr.VPN) int {
	if m.tlb.Invalidate(as, vpn) {
		m.cycles.Add(m.cfg.Costs.PurgeEntry)
		return 1
	}
	return 0
}

// UnmapPage destroys the translation for vpn: every address space's TLB
// entry must be found and purged (the duplicated-purge cost of Section
// 3.1), and the page's cache lines flushed.
func (m *ConventionalMachine) UnmapPage(vpn addr.VPN) int {
	c := &m.cfg.Costs
	// The flush needs the physical frame before the mapping disappears.
	var pfn addr.PFN
	havePFN := false
	if m.vipt != nil {
		if pte, ok := m.os.Walk(m.asid(), vpn); ok {
			pfn, havePFN = pte.PFN, true
		}
	}
	n := m.tlb.PurgePage(vpn)
	m.cycles.Add(uint64(m.tlb.Capacity()) * c.PurgeEntry)
	var dirty int
	if m.vipt != nil {
		if havePFN {
			_, dirty = m.vipt.FlushFrame(pfn, m.cfg.Geometry)
		}
	} else {
		_, dirty = m.cache.FlushPage(m.cfg.Geometry.Base(vpn), m.cfg.Geometry)
	}
	m.cycles.Add((m.cfg.Geometry.PageSize() >> m.cfg.Cache.LineShift) * c.CacheLineFlush)
	m.cycles.Add(uint64(dirty) * c.Writeback)
	return n
}

// FlushDataCache flushes every line of the data cache (virtual or
// VIPT), charging the per-line flush and writeback costs. Lines left
// by mappings the CPU no longer holds would otherwise survive a bulk
// invalidation: unmap shootdowns flush them when delivered, and a CPU
// withdrawn from the sharer directory stops receiving those.
func (m *ConventionalMachine) FlushDataCache() int {
	var flushed, dirty int
	if m.vipt != nil {
		flushed, dirty = m.vipt.FlushAll()
	} else {
		flushed, dirty = m.cache.FlushAll()
	}
	m.cycles.Add(uint64(flushed)*m.cfg.Costs.CacheLineFlush + uint64(dirty)*m.cfg.Costs.Writeback)
	return flushed
}

// Geometry returns the machine's translation page geometry.
func (m *ConventionalMachine) Geometry() addr.Geometry { return m.cfg.Geometry }

var _ Machine = (*ConventionalMachine)(nil)

// FlushMachine is a conventional machine without address space
// identifiers: homonyms make both the TLB and the virtual cache unusable
// across a context switch, so both are flushed on every switch — the
// regime the paper cites for the i860 (Section 2.2).
type FlushMachine struct {
	inner *ConventionalMachine
}

// NewFlush builds a flush machine. The configuration's cache must not use
// ASID tags (there is no ASID); NewFlush clears the flag.
func NewFlush(cfg ConvConfig, os MultiOS) *FlushMachine {
	cfg.Cache.ASIDTags = false
	cfg.CacheOrg = ConvCacheVIVTASID // flushing presumes the virtual cache
	return &FlushMachine{inner: NewConventional(cfg, os)}
}

// Name implements Machine.
func (m *FlushMachine) Name() string { return "flush" }

// Domain implements Machine.
func (m *FlushMachine) Domain() addr.DomainID { return m.inner.domain }

// Counters implements Machine.
func (m *FlushMachine) Counters() *stats.Counters { return &m.inner.ctrs }

// Cycles implements Machine.
func (m *FlushMachine) Cycles() uint64 { return m.inner.cycles.Total() }

// Costs implements Machine.
func (m *FlushMachine) Costs() cpu.CostModel { return m.inner.cfg.Costs }

// Cache exposes the data cache for inspection.
func (m *FlushMachine) Cache() *cache.VirtualCache { return m.inner.cache }

// Inner exposes the wrapped conventional machine, through which the
// kernel's conventional engine performs TLB maintenance and the oracle
// inspects resident state. The flush machine shares the conventional
// machine's structures; only its switch behaviour differs.
func (m *FlushMachine) Inner() *ConventionalMachine { return m.inner }

// TLB exposes the TLB for inspection.
func (m *FlushMachine) TLB() *tlb.ASIDTLB { return m.inner.tlb }

// SwitchDomain implements Machine: everything goes.
func (m *FlushMachine) SwitchDomain(d addr.DomainID) {
	c := &m.inner.cfg.Costs
	if d == m.inner.domain {
		return
	}
	purged := m.inner.tlb.PurgeAll()
	flushed, dirty := m.inner.cache.FlushAll()
	cost := c.RegisterWrite +
		uint64(purged)*c.PurgeEntry +
		uint64(flushed)*c.CacheLineFlush +
		uint64(dirty)*c.Writeback
	m.inner.domain = d
	m.inner.hSwitches.Inc()
	m.inner.hSwitchCycles.Add(cost)
	m.inner.cycles.Add(cost)
}

// Access implements Machine. With the TLB and cache flushed per switch,
// every ASID sees only its own entries; the inner machine's ASID tagging
// is harmless because homonymous entries never coexist.
func (m *FlushMachine) Access(va addr.VA, kind addr.AccessKind) cpu.Outcome {
	return m.inner.Access(va, kind)
}

var _ Machine = (*FlushMachine)(nil)
