package ptable

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/addr"
)

func TestInvertedMapLookupUnmap(t *testing.T) {
	it := MustInvertedTable(8)
	if err := it.Map(0x100, 3); err != nil {
		t.Fatal(err)
	}
	pte, ok := it.Lookup(0x100)
	if !ok || pte.PFN != 3 {
		t.Fatalf("Lookup = %+v,%v", pte, ok)
	}
	if _, ok := it.Lookup(0x101); ok {
		t.Fatal("phantom mapping")
	}
	got, err := it.Unmap(0x100)
	if err != nil || got.PFN != 3 {
		t.Fatalf("Unmap = %+v,%v", got, err)
	}
	if _, err := it.Unmap(0x100); err == nil {
		t.Fatal("double unmap succeeded")
	}
	if it.Len() != 0 {
		t.Fatalf("Len = %d", it.Len())
	}
}

func TestInvertedRejectsHomonymsAndSynonyms(t *testing.T) {
	it := MustInvertedTable(8)
	it.Map(1, 0)
	if err := it.Map(1, 1); err == nil {
		t.Fatal("homonym accepted")
	}
	if err := it.Map(2, 0); err == nil {
		t.Fatal("synonym (busy frame) accepted")
	}
	if err := it.Map(2, 99); err == nil {
		t.Fatal("out-of-range frame accepted")
	}
}

func TestInvertedDirtyRef(t *testing.T) {
	it := MustInvertedTable(4)
	it.Map(7, 2)
	it.SetRef(7)
	pte, _ := it.Lookup(7)
	if !pte.Ref || pte.Dirty {
		t.Fatalf("after SetRef: %+v", pte)
	}
	it.SetDirty(7)
	if pte, _ := it.Lookup(7); !pte.Dirty {
		t.Fatal("SetDirty lost")
	}
	if !it.ClearDirty(7) || it.ClearDirty(7) {
		t.Fatal("ClearDirty semantics wrong")
	}
	// Bits on unmapped pages: silent no-ops.
	it.SetDirty(99)
	it.SetRef(99)
	if it.ClearDirty(99) {
		t.Fatal("ClearDirty on unmapped returned true")
	}
}

func TestInvertedFullTable(t *testing.T) {
	const frames = 64
	it := MustInvertedTable(frames)
	for i := 0; i < frames; i++ {
		// Adversarial VPNs: clustered to force chain collisions.
		if err := it.Map(addr.VPN(i*17), addr.PFN(i)); err != nil {
			t.Fatalf("map %d: %v", i, err)
		}
	}
	if it.Len() != frames {
		t.Fatalf("Len = %d", it.Len())
	}
	for i := 0; i < frames; i++ {
		pte, ok := it.Lookup(addr.VPN(i * 17))
		if !ok || pte.PFN != addr.PFN(i) {
			t.Fatalf("lookup %d = %+v,%v", i, pte, ok)
		}
	}
	lookups, probes := it.ProbeStats()
	// Map's existence checks probe empty buckets for free, so probes may
	// trail lookups; the verification sweep's 64 hits cost >= 1 probe each.
	if lookups == 0 || probes < frames {
		t.Fatalf("probe stats = %d,%d", lookups, probes)
	}
	// Load factor 0.5 over 128 anchors: average chain stays short.
	if avg := float64(probes) / float64(lookups); avg > 3 {
		t.Errorf("average probes %f too high for 0.5 load", avg)
	}
}

// Property: the inverted table agrees with the map-based table across
// arbitrary operation sequences.
func TestInvertedMatchesMapTable(t *testing.T) {
	f := func(ops []uint16) bool {
		const frames = 32
		it := MustInvertedTable(frames)
		mt := NewTranslationTable()
		frameUsed := map[addr.PFN]bool{}
		vpnOf := map[addr.PFN]addr.VPN{}
		for i, op := range ops {
			vpn := addr.VPN(op % 64)
			pfn := addr.PFN(i % frames)
			switch op % 3 {
			case 0: // map if possible
				_, mappedIT := it.Lookup(vpn)
				if mappedIT || frameUsed[pfn] {
					continue
				}
				if err := it.Map(vpn, pfn); err != nil {
					return false
				}
				if err := mt.Map(vpn, pfn); err != nil {
					return false
				}
				frameUsed[pfn] = true
				vpnOf[pfn] = vpn
			case 1: // unmap
				_, ok := mt.Lookup(vpn)
				p1, e1 := it.Unmap(vpn)
				p2, e2 := mt.Unmap(vpn)
				if (e1 == nil) != ok || (e2 == nil) != ok {
					return false
				}
				if e1 == nil && p1.PFN != p2.PFN {
					return false
				}
				if e1 == nil {
					delete(frameUsed, p1.PFN)
					delete(vpnOf, p1.PFN)
				}
			case 2: // dirty/lookup agreement
				it.SetDirty(vpn)
				mt.SetDirty(vpn)
				p1, ok1 := it.Lookup(vpn)
				p2, ok2 := mt.Lookup(vpn)
				if ok1 != ok2 {
					return false
				}
				if ok1 && (p1.PFN != p2.PFN || p1.Dirty != p2.Dirty) {
					return false
				}
			}
			if it.Len() != mt.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestInvertedNewValidation(t *testing.T) {
	it, err := NewInvertedTable(0)
	if err == nil {
		t.Fatal("NewInvertedTable accepted 0 frames")
	}
	if it != nil {
		t.Fatal("NewInvertedTable returned a table alongside the error")
	}
	if !errors.Is(err, ErrConfig) {
		t.Fatalf("error %v does not wrap ErrConfig", err)
	}
	var ce *ConfigError
	if !errors.As(err, &ce) || ce.Field != "nframes" {
		t.Fatalf("error %v is not a *ConfigError on nframes", err)
	}
	// MustInvertedTable converts the typed error into a panic.
	defer func() {
		if recover() == nil {
			t.Error("MustInvertedTable did not panic for 0 frames")
		}
	}()
	MustInvertedTable(0)
}
