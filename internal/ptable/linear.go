package ptable

import (
	"fmt"

	"repro/internal/addr"
)

// LinearPTE is an entry of a conventional per-address-space linear page
// table: translation and protection stored together.
type LinearPTE struct {
	PFN    addr.PFN
	Rights addr.Rights
	Valid  bool
	Dirty  bool
	Ref    bool
}

// LinearTable is a VAX/SPARC-style linear page table for one address
// space. The table is declared over contiguous VPN regions; every page of
// every region consumes a PTE slot whether mapped or not, which is how
// linear tables waste space on the sparse views typical of single address
// space systems (Section 3.1).
type LinearTable struct {
	regions []linearRegion
	walks   uint64
}

type linearRegion struct {
	start addr.VPN
	ptes  []LinearPTE
}

// NewLinearTable creates an empty linear table with no regions.
func NewLinearTable() *LinearTable { return &LinearTable{} }

// AddRegion declares PTE slots for npages pages starting at start. Regions
// may not overlap. The slots exist (and count against SlotCount) from this
// moment, mapped or not.
func (t *LinearTable) AddRegion(start addr.VPN, npages uint64) error {
	newEnd := uint64(start) + npages
	for _, r := range t.regions {
		rEnd := uint64(r.start) + uint64(len(r.ptes))
		if uint64(start) < rEnd && uint64(r.start) < newEnd {
			return fmt.Errorf("ptable: region [%#x,%#x) overlaps [%#x,%#x)",
				uint64(start), newEnd, uint64(r.start), rEnd)
		}
	}
	t.regions = append(t.regions, linearRegion{start: start, ptes: make([]LinearPTE, npages)})
	return nil
}

func (t *LinearTable) slot(vpn addr.VPN) *LinearPTE {
	for i := range t.regions {
		r := &t.regions[i]
		if vpn >= r.start && uint64(vpn) < uint64(r.start)+uint64(len(r.ptes)) {
			return &r.ptes[vpn-r.start]
		}
	}
	return nil
}

// Map sets the PTE for vpn. The page must lie inside a declared region.
func (t *LinearTable) Map(vpn addr.VPN, pfn addr.PFN, rights addr.Rights) error {
	s := t.slot(vpn)
	if s == nil {
		return fmt.Errorf("ptable: vpn %#x outside all linear regions", uint64(vpn))
	}
	*s = LinearPTE{PFN: pfn, Rights: rights, Valid: true}
	return nil
}

// Unmap invalidates the PTE for vpn, returning whether it was valid.
func (t *LinearTable) Unmap(vpn addr.VPN) bool {
	s := t.slot(vpn)
	if s == nil || !s.Valid {
		return false
	}
	s.Valid = false
	return true
}

// SetRights updates protection bits for a mapped page.
func (t *LinearTable) SetRights(vpn addr.VPN, rights addr.Rights) error {
	s := t.slot(vpn)
	if s == nil || !s.Valid {
		return fmt.Errorf("ptable: vpn %#x not mapped", uint64(vpn))
	}
	s.Rights = rights
	return nil
}

// Walk performs a page table walk for vpn, counting the walk. Returns the
// PTE and whether a valid mapping exists.
func (t *LinearTable) Walk(vpn addr.VPN) (LinearPTE, bool) {
	t.walks++
	s := t.slot(vpn)
	if s == nil || !s.Valid {
		return LinearPTE{}, false
	}
	s.Ref = true
	return *s, true
}

// SetDirty marks vpn dirty if mapped.
func (t *LinearTable) SetDirty(vpn addr.VPN) {
	if s := t.slot(vpn); s != nil && s.Valid {
		s.Dirty = true
		s.Ref = true
	}
}

// SlotCount returns the total number of PTE slots allocated (the space the
// table consumes, mapped or not).
func (t *LinearTable) SlotCount() uint64 {
	var n uint64
	for _, r := range t.regions {
		n += uint64(len(r.ptes))
	}
	return n
}

// MappedCount returns the number of valid PTEs.
func (t *LinearTable) MappedCount() uint64 {
	var n uint64
	for _, r := range t.regions {
		for i := range r.ptes {
			if r.ptes[i].Valid {
				n++
			}
		}
	}
	return n
}

// Walks returns the number of page table walks performed.
func (t *LinearTable) Walks() uint64 { return t.walks }
