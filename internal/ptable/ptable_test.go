package ptable

import (
	"testing"
	"testing/quick"

	"repro/internal/addr"
)

func TestTranslationTableMapLookup(t *testing.T) {
	tt := NewTranslationTable()
	if err := tt.Map(0x100, 7); err != nil {
		t.Fatal(err)
	}
	pte, ok := tt.Lookup(0x100)
	if !ok || pte.PFN != 7 {
		t.Fatalf("Lookup = %+v,%v", pte, ok)
	}
	if _, ok := tt.Lookup(0x101); ok {
		t.Fatal("phantom mapping")
	}
	if tt.Len() != 1 {
		t.Fatalf("Len = %d", tt.Len())
	}
}

func TestTranslationTableNoHomonyms(t *testing.T) {
	tt := NewTranslationTable()
	if err := tt.Map(0x100, 1); err != nil {
		t.Fatal(err)
	}
	// A second translation for the same VPN is a homonym: forbidden.
	if err := tt.Map(0x100, 2); err == nil {
		t.Fatal("remap of mapped vpn succeeded")
	}
}

func TestTranslationTableNoSynonyms(t *testing.T) {
	tt := NewTranslationTable()
	if err := tt.Map(0x100, 1); err != nil {
		t.Fatal(err)
	}
	// A second virtual page over the same frame is a synonym: forbidden.
	if err := tt.Map(0x200, 1); err == nil {
		t.Fatal("synonym mapping succeeded")
	}
	// After unmap, the frame may be remapped.
	if _, err := tt.Unmap(0x100); err != nil {
		t.Fatal(err)
	}
	if err := tt.Map(0x200, 1); err != nil {
		t.Fatalf("remap after unmap: %v", err)
	}
}

func TestTranslationTableUnmap(t *testing.T) {
	tt := NewTranslationTable()
	tt.Map(0x1, 9)
	pte, err := tt.Unmap(0x1)
	if err != nil || pte.PFN != 9 {
		t.Fatalf("Unmap = %+v,%v", pte, err)
	}
	if _, err := tt.Unmap(0x1); err == nil {
		t.Fatal("double unmap succeeded")
	}
	maps, unmaps := tt.Stats()
	if maps != 1 || unmaps != 1 {
		t.Fatalf("stats = %d,%d", maps, unmaps)
	}
}

func TestTranslationTableDirtyRef(t *testing.T) {
	tt := NewTranslationTable()
	tt.Map(0x1, 3)
	tt.SetRef(0x1)
	pte, _ := tt.Lookup(0x1)
	if !pte.Ref || pte.Dirty {
		t.Fatalf("after SetRef: %+v", pte)
	}
	tt.SetDirty(0x1)
	pte, _ = tt.Lookup(0x1)
	if !pte.Dirty {
		t.Fatal("SetDirty failed")
	}
	if was := tt.ClearDirty(0x1); !was {
		t.Fatal("ClearDirty returned false for dirty page")
	}
	pte, _ = tt.Lookup(0x1)
	if pte.Dirty {
		t.Fatal("dirty bit not cleared")
	}
	if tt.ClearDirty(0x999) {
		t.Fatal("ClearDirty on unmapped page returned true")
	}
	// Setting bits on unmapped pages is a silent no-op.
	tt.SetDirty(0x999)
	tt.SetRef(0x999)
}

// Property: any interleaving of valid map/unmap keeps the table internally
// consistent — every forward entry has a matching reverse entry.
func TestTranslationTableConsistency(t *testing.T) {
	f := func(ops []uint16) bool {
		tt := NewTranslationTable()
		mapped := map[addr.VPN]addr.PFN{}
		for i, op := range ops {
			vpn := addr.VPN(op % 32)
			pfn := addr.PFN(i % 64)
			if _, ok := mapped[vpn]; ok {
				if _, err := tt.Unmap(vpn); err != nil {
					return false
				}
				delete(mapped, vpn)
			} else {
				// Skip if pfn already used by another vpn.
				inUse := false
				for _, p := range mapped {
					if p == pfn {
						inUse = true
						break
					}
				}
				if inUse {
					continue
				}
				if err := tt.Map(vpn, pfn); err != nil {
					return false
				}
				mapped[vpn] = pfn
			}
			if tt.Len() != len(mapped) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLinearTableRegions(t *testing.T) {
	lt := NewLinearTable()
	if err := lt.AddRegion(0x100, 16); err != nil {
		t.Fatal(err)
	}
	if err := lt.AddRegion(0x108, 4); err == nil {
		t.Fatal("overlapping region accepted")
	}
	if err := lt.AddRegion(0x200, 8); err != nil {
		t.Fatal(err)
	}
	if lt.SlotCount() != 24 {
		t.Fatalf("SlotCount = %d", lt.SlotCount())
	}
	if lt.MappedCount() != 0 {
		t.Fatal("fresh table has mappings")
	}
}

func TestLinearTableMapWalk(t *testing.T) {
	lt := NewLinearTable()
	lt.AddRegion(0x10, 8)
	if err := lt.Map(0x12, 5, addr.RW); err != nil {
		t.Fatal(err)
	}
	if err := lt.Map(0x99, 5, addr.RW); err == nil {
		t.Fatal("map outside regions succeeded")
	}
	pte, ok := lt.Walk(0x12)
	if !ok || pte.PFN != 5 || pte.Rights != addr.RW {
		t.Fatalf("Walk = %+v,%v", pte, ok)
	}
	if !pte.Ref {
		t.Fatal("Walk did not set ref")
	}
	if _, ok := lt.Walk(0x13); ok {
		t.Fatal("walk of unmapped slot hit")
	}
	if lt.Walks() != 2 {
		t.Fatalf("Walks = %d", lt.Walks())
	}
	if lt.MappedCount() != 1 {
		t.Fatalf("MappedCount = %d", lt.MappedCount())
	}
}

func TestLinearTableRightsAndUnmap(t *testing.T) {
	lt := NewLinearTable()
	lt.AddRegion(0, 4)
	lt.Map(1, 1, addr.Read)
	if err := lt.SetRights(1, addr.RW); err != nil {
		t.Fatal(err)
	}
	pte, _ := lt.Walk(1)
	if pte.Rights != addr.RW {
		t.Fatal("SetRights lost")
	}
	if err := lt.SetRights(2, addr.RW); err == nil {
		t.Fatal("SetRights on unmapped succeeded")
	}
	lt.SetDirty(1)
	pte, _ = lt.Walk(1)
	if !pte.Dirty {
		t.Fatal("SetDirty lost")
	}
	if !lt.Unmap(1) {
		t.Fatal("Unmap returned false")
	}
	if lt.Unmap(1) {
		t.Fatal("double Unmap returned true")
	}
	if lt.SlotCount() != 4 {
		t.Fatal("Unmap changed slot count")
	}
}

func TestProtTable(t *testing.T) {
	pt := NewProtTable()
	if _, ok := pt.Get(1); ok {
		t.Fatal("phantom override")
	}
	pt.Set(1, addr.Read)
	pt.Set(2, addr.RW)
	if r, ok := pt.Get(1); !ok || r != addr.Read {
		t.Fatalf("Get = %v,%v", r, ok)
	}
	if pt.Len() != 2 {
		t.Fatalf("Len = %d", pt.Len())
	}
	if !pt.Clear(1) || pt.Clear(1) {
		t.Fatal("Clear semantics wrong")
	}
	// None is a meaningful override (explicit denial), distinct from absent.
	pt.Set(3, addr.None)
	if r, ok := pt.Get(3); !ok || r != addr.None {
		t.Fatal("explicit None override lost")
	}
}

func TestProtTableClearRange(t *testing.T) {
	pt := NewProtTable()
	for vpn := addr.VPN(10); vpn < 20; vpn++ {
		pt.Set(vpn, addr.RW)
	}
	pt.Set(25, addr.Read)
	if n := pt.ClearRange(12, 4); n != 4 {
		t.Fatalf("ClearRange = %d", n)
	}
	if pt.Len() != 7 {
		t.Fatalf("Len = %d", pt.Len())
	}
	count := 0
	pt.ForEach(func(addr.VPN, addr.Rights) bool { count++; return true })
	if count != 7 {
		t.Fatalf("ForEach visited %d", count)
	}
}
