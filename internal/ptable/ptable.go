// Package ptable implements the operating system's authoritative virtual
// memory data structures, in the two organizations Section 3.1 of the
// paper contrasts:
//
//   - The single-address-space-friendly split: one global TranslationTable
//     shared by all protection domains (one entry per mapped virtual page,
//     no duplication) plus a sparse per-domain ProtTable of access rights.
//
//   - The conventional organization: a per-address-space LinearTable that
//     stores translation and protection together, duplicating shared
//     mappings in every address space and wasting slots on sparse views.
package ptable

import (
	"fmt"

	"repro/internal/addr"
)

// PTE is a translation entry in the global table: the unique mapping for a
// virtual page, plus the dirty and reference bits, which belong with the
// translation (they are per-page facts, not per-domain facts — Section
// 3.2.1, footnote 6).
type PTE struct {
	PFN   addr.PFN
	Dirty bool
	Ref   bool
}

// TranslationTable is the global virtual-to-physical mapping of a single
// address space system. By construction it admits exactly one translation
// per virtual page: homonyms cannot be represented at all, which mirrors
// the paper's observation that they cannot occur in such a system.
type TranslationTable struct {
	entries map[addr.VPN]PTE
	rmap    map[addr.PFN]addr.VPN // reverse map; enforces no synonyms
	maps    uint64
	unmaps  uint64
}

// NewTranslationTable creates an empty global translation table.
func NewTranslationTable() *TranslationTable {
	return &TranslationTable{
		entries: make(map[addr.VPN]PTE),
		rmap:    make(map[addr.PFN]addr.VPN),
	}
}

// Map establishes vpn → pfn. It is an error to remap an already mapped
// page (translations are unique; changing one requires an explicit Unmap,
// which has architectural cost) or to map two pages to one frame (the
// kernel never creates physical synonyms in a single address space).
func (t *TranslationTable) Map(vpn addr.VPN, pfn addr.PFN) error {
	if old, ok := t.entries[vpn]; ok {
		return fmt.Errorf("ptable: vpn %#x already mapped to pfn %d", uint64(vpn), old.PFN)
	}
	if prior, ok := t.rmap[pfn]; ok {
		return fmt.Errorf("ptable: pfn %d already mapped by vpn %#x (synonym forbidden)", pfn, uint64(prior))
	}
	t.entries[vpn] = PTE{PFN: pfn}
	t.rmap[pfn] = vpn
	t.maps++
	return nil
}

// Unmap removes the translation for vpn, returning the old entry.
func (t *TranslationTable) Unmap(vpn addr.VPN) (PTE, error) {
	pte, ok := t.entries[vpn]
	if !ok {
		return PTE{}, fmt.Errorf("ptable: vpn %#x not mapped", uint64(vpn))
	}
	delete(t.entries, vpn)
	delete(t.rmap, pte.PFN)
	t.unmaps++
	return pte, nil
}

// Lookup returns the translation for vpn.
func (t *TranslationTable) Lookup(vpn addr.VPN) (PTE, bool) {
	pte, ok := t.entries[vpn]
	return pte, ok
}

// SetDirty sets the dirty (and reference) bit for vpn. The map write is
// skipped when both bits are already set — every warm access lands here,
// so the common case must not rewrite the entry.
func (t *TranslationTable) SetDirty(vpn addr.VPN) {
	if pte, ok := t.entries[vpn]; ok && !(pte.Dirty && pte.Ref) {
		pte.Dirty = true
		pte.Ref = true
		t.entries[vpn] = pte
	}
}

// SetRef sets the reference bit for vpn (write skipped when already set;
// see SetDirty).
func (t *TranslationTable) SetRef(vpn addr.VPN) {
	if pte, ok := t.entries[vpn]; ok && !pte.Ref {
		pte.Ref = true
		t.entries[vpn] = pte
	}
}

// ClearDirty clears the dirty bit for vpn and returns its prior value.
func (t *TranslationTable) ClearDirty(vpn addr.VPN) bool {
	pte, ok := t.entries[vpn]
	if !ok {
		return false
	}
	was := pte.Dirty
	pte.Dirty = false
	t.entries[vpn] = pte
	return was
}

// Len returns the number of mapped pages.
func (t *TranslationTable) Len() int { return len(t.entries) }

// Stats returns map/unmap operation counts.
func (t *TranslationTable) Stats() (maps, unmaps uint64) { return t.maps, t.unmaps }

// ForEach visits every mapping until fn returns false.
func (t *TranslationTable) ForEach(fn func(addr.VPN, PTE) bool) {
	for vpn, pte := range t.entries {
		if !fn(vpn, pte) {
			return
		}
	}
}
