package ptable

import "repro/internal/addr"

// ProtTable is the sparse per-domain protection table of a single address
// space kernel: the authoritative record of one protection domain's access
// rights to individual virtual pages. Together with segment-level default
// rights (kept by the kernel), it is the software structure the PLB and
// page-group caches are refilled from.
//
// Entries are explicit per-(domain,page) overrides; pages with no entry
// fall back to the domain's segment attachment rights.
type ProtTable struct {
	overrides map[addr.VPN]addr.Rights
}

// NewProtTable creates an empty protection table.
func NewProtTable() *ProtTable {
	return &ProtTable{overrides: make(map[addr.VPN]addr.Rights)}
}

// Set records an explicit per-page rights override.
func (p *ProtTable) Set(vpn addr.VPN, r addr.Rights) { p.overrides[vpn] = r }

// Get returns the override for vpn and whether one exists.
func (p *ProtTable) Get(vpn addr.VPN) (addr.Rights, bool) {
	r, ok := p.overrides[vpn]
	return r, ok
}

// Clear removes the override for vpn (the page reverts to its segment
// default), reporting whether one existed.
func (p *ProtTable) Clear(vpn addr.VPN) bool {
	if _, ok := p.overrides[vpn]; !ok {
		return false
	}
	delete(p.overrides, vpn)
	return true
}

// ClearRange removes all overrides for pages in [start, start+npages),
// returning how many were removed.
func (p *ProtTable) ClearRange(start addr.VPN, npages uint64) int {
	n := 0
	for vpn := start; uint64(vpn) < uint64(start)+npages; vpn++ {
		if p.Clear(vpn) {
			n++
		}
	}
	return n
}

// Len returns the number of overrides.
func (p *ProtTable) Len() int { return len(p.overrides) }

// ForEach visits all overrides until fn returns false.
func (p *ProtTable) ForEach(fn func(addr.VPN, addr.Rights) bool) {
	for vpn, r := range p.overrides {
		if !fn(vpn, r) {
			return
		}
	}
}
