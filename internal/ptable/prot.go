package ptable

import "repro/internal/addr"

// ProtTable is the sparse per-domain protection table of a single address
// space kernel: the authoritative record of one protection domain's access
// rights to individual virtual pages. Together with segment-level default
// rights (kept by the kernel), it is the software structure the PLB and
// page-group caches are refilled from.
//
// Entries are explicit per-(domain,page) overrides; pages with no entry
// fall back to the domain's segment attachment rights.
//
// The zero table is empty and usable: the inner map materializes on the
// first Set, and every read-side method accepts a nil receiver — a
// freshly created (or forked) domain carries no table at all until it
// takes its first override, so domain churn allocates nothing here.
type ProtTable struct {
	overrides map[addr.VPN]addr.Rights
	// refs counts the domains referencing this table through
	// copy-on-write fork sharing; 0 and 1 both mean a sole owner, who
	// may mutate in place. The count is what keeps the last sharer
	// from paying for a copy nobody else can observe.
	refs int
}

// Share records one more copy-on-write referent (a fork).
func (p *ProtTable) Share() {
	if p.refs == 0 {
		p.refs = 2
		return
	}
	p.refs++
}

// Release drops one referent — a sharer broke off with a private copy,
// or died.
func (p *ProtTable) Release() {
	if p != nil && p.refs > 0 {
		p.refs--
	}
}

// Shared reports whether more than one domain references the table, so
// a mutation must clone first.
func (p *ProtTable) Shared() bool { return p != nil && p.refs > 1 }

// NewProtTable creates an empty protection table.
func NewProtTable() *ProtTable {
	return &ProtTable{}
}

// Set records an explicit per-page rights override.
func (p *ProtTable) Set(vpn addr.VPN, r addr.Rights) {
	if p.overrides == nil {
		p.overrides = make(map[addr.VPN]addr.Rights)
	}
	p.overrides[vpn] = r
}

// Get returns the override for vpn and whether one exists.
func (p *ProtTable) Get(vpn addr.VPN) (addr.Rights, bool) {
	if p == nil {
		return addr.None, false
	}
	r, ok := p.overrides[vpn]
	return r, ok
}

// Clear removes the override for vpn (the page reverts to its segment
// default), reporting whether one existed.
func (p *ProtTable) Clear(vpn addr.VPN) bool {
	if p == nil {
		return false
	}
	if _, ok := p.overrides[vpn]; !ok {
		return false
	}
	delete(p.overrides, vpn)
	return true
}

// ClearRange removes all overrides for pages in [start, start+npages),
// returning how many were removed. When the range is wider than the
// table it walks the entries instead of the pages, so clearing a huge
// segment off a near-empty table costs O(overrides), not O(pages).
func (p *ProtTable) ClearRange(start addr.VPN, npages uint64) int {
	if p == nil || len(p.overrides) == 0 {
		return 0
	}
	n := 0
	if npages > uint64(len(p.overrides)) {
		for vpn := range p.overrides {
			if uint64(vpn) >= uint64(start) && uint64(vpn) < uint64(start)+npages {
				delete(p.overrides, vpn)
				n++
			}
		}
		return n
	}
	for vpn := start; uint64(vpn) < uint64(start)+npages; vpn++ {
		if p.Clear(vpn) {
			n++
		}
	}
	return n
}

// Len returns the number of overrides.
func (p *ProtTable) Len() int {
	if p == nil {
		return 0
	}
	return len(p.overrides)
}

// Clone returns an independent copy — the copy-on-write break a forked
// domain performs before its first divergent override.
func (p *ProtTable) Clone() *ProtTable {
	c := &ProtTable{}
	if p == nil || len(p.overrides) == 0 {
		return c
	}
	c.overrides = make(map[addr.VPN]addr.Rights, len(p.overrides))
	for vpn, r := range p.overrides {
		c.overrides[vpn] = r
	}
	return c
}

// ForEach visits all overrides until fn returns false.
func (p *ProtTable) ForEach(fn func(addr.VPN, addr.Rights) bool) {
	if p == nil {
		return
	}
	for vpn, r := range p.overrides {
		if !fn(vpn, r) {
			return
		}
	}
}
