package ptable

import (
	"errors"
	"fmt"

	"repro/internal/addr"
)

// ErrConfig classifies invalid page-table configurations. errors.Is
// matches every construction failure; errors.As extracts the
// *ConfigError carrying the offending parameter.
var ErrConfig = errors.New("ptable: invalid config")

// ConfigError is the structured form of a rejected configuration,
// following the kernel.FaultError convention: context fields plus a
// classifying sentinel, reachable through errors.Is/As.
type ConfigError struct {
	// Field names the rejected parameter.
	Field string
	// Detail says what was wrong with it.
	Detail string
	// Sentinel classifies the failure (ErrConfig).
	Sentinel error
}

// Error implements error.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("%s: %s: %s", e.Sentinel.Error(), e.Field, e.Detail)
}

// Unwrap exposes the sentinel to errors.Is.
func (e *ConfigError) Unwrap() error { return e.Sentinel }

// InvertedTable is an inverted (frame-indexed) page table with a hash
// anchor table — the organization of the IBM 801 that Section 3.1 cites
// as well suited to single address space systems: its size is
// proportional to physical memory, not to the (vast, sparse) virtual
// space, and it holds exactly one entry per mapped page, shared by all
// protection domains.
//
// Lookup hashes the VPN into the anchor table and follows the collision
// chain through the frame entries; the probe counts expose the software
// walk cost as the table loads up.
type InvertedTable struct {
	anchors []int32 // hash bucket -> entry index (frame), -1 if empty
	entries []invEntry
	next    []int32 // collision chain, indexed by frame

	size    int
	maps    uint64
	unmaps  uint64
	lookups uint64
	probes  uint64
}

type invEntry struct {
	vpn   addr.VPN
	valid bool
	dirty bool
	ref   bool
}

// NewInvertedTable creates a table for nframes physical frames with
// 2*nframes hash anchors (load factor <= 0.5 when full). A frame count
// below one returns a *ConfigError wrapping ErrConfig; MustInvertedTable
// panics instead for known-good counts.
func NewInvertedTable(nframes int) (*InvertedTable, error) {
	if nframes < 1 {
		return nil, &ConfigError{
			Field:    "nframes",
			Detail:   fmt.Sprintf("inverted table needs at least one frame, got %d", nframes),
			Sentinel: ErrConfig,
		}
	}
	nAnchors := 2 * nframes
	t := &InvertedTable{
		anchors: make([]int32, nAnchors),
		entries: make([]invEntry, nframes),
		next:    make([]int32, nframes),
	}
	for i := range t.anchors {
		t.anchors[i] = -1
	}
	for i := range t.next {
		t.next[i] = -1
	}
	return t, nil
}

// MustInvertedTable is NewInvertedTable for frame counts known to be
// valid; it panics on a config error.
func MustInvertedTable(nframes int) *InvertedTable {
	t, err := NewInvertedTable(nframes)
	if err != nil {
		panic(err)
	}
	return t
}

func (t *InvertedTable) bucket(vpn addr.VPN) int {
	h := uint64(vpn)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return int(h % uint64(len(t.anchors)))
}

// Map establishes vpn → pfn. One translation per page and one page per
// frame, as in any single address space table.
func (t *InvertedTable) Map(vpn addr.VPN, pfn addr.PFN) error {
	if int(pfn) >= len(t.entries) {
		return fmt.Errorf("ptable: frame %d outside inverted table (%d frames)", pfn, len(t.entries))
	}
	if t.entries[pfn].valid {
		return fmt.Errorf("ptable: frame %d already holds vpn %#x", pfn, uint64(t.entries[pfn].vpn))
	}
	if _, ok := t.Lookup(vpn); ok {
		return fmt.Errorf("ptable: vpn %#x already mapped", uint64(vpn))
	}
	b := t.bucket(vpn)
	t.entries[pfn] = invEntry{vpn: vpn, valid: true}
	t.next[pfn] = t.anchors[b]
	t.anchors[b] = int32(pfn)
	t.size++
	t.maps++
	return nil
}

// find returns the frame holding vpn and its chain predecessor (-1 if at
// the anchor), counting probes.
func (t *InvertedTable) find(vpn addr.VPN) (frame, prev int32) {
	b := t.bucket(vpn)
	prev = -1
	for cur := t.anchors[b]; cur != -1; cur = t.next[cur] {
		t.probes++
		if t.entries[cur].valid && t.entries[cur].vpn == vpn {
			return cur, prev
		}
		prev = cur
	}
	return -1, -1
}

// Lookup returns the translation for vpn.
func (t *InvertedTable) Lookup(vpn addr.VPN) (PTE, bool) {
	t.lookups++
	f, _ := t.find(vpn)
	if f == -1 {
		return PTE{}, false
	}
	e := t.entries[f]
	return PTE{PFN: addr.PFN(f), Dirty: e.dirty, Ref: e.ref}, true
}

// Unmap removes the translation for vpn.
func (t *InvertedTable) Unmap(vpn addr.VPN) (PTE, error) {
	t.lookups++
	f, prev := t.find(vpn)
	if f == -1 {
		return PTE{}, fmt.Errorf("ptable: vpn %#x not mapped", uint64(vpn))
	}
	e := t.entries[f]
	if prev == -1 {
		t.anchors[t.bucket(vpn)] = t.next[f]
	} else {
		t.next[prev] = t.next[f]
	}
	t.entries[f] = invEntry{}
	t.next[f] = -1
	t.size--
	t.unmaps++
	return PTE{PFN: addr.PFN(f), Dirty: e.dirty, Ref: e.ref}, nil
}

// SetDirty sets the dirty (and reference) bits for vpn if mapped.
func (t *InvertedTable) SetDirty(vpn addr.VPN) {
	t.lookups++
	if f, _ := t.find(vpn); f != -1 {
		t.entries[f].dirty = true
		t.entries[f].ref = true
	}
}

// SetRef sets the reference bit for vpn if mapped.
func (t *InvertedTable) SetRef(vpn addr.VPN) {
	t.lookups++
	if f, _ := t.find(vpn); f != -1 {
		t.entries[f].ref = true
	}
}

// ClearDirty clears the dirty bit, returning its prior value.
func (t *InvertedTable) ClearDirty(vpn addr.VPN) bool {
	t.lookups++
	f, _ := t.find(vpn)
	if f == -1 {
		return false
	}
	was := t.entries[f].dirty
	t.entries[f].dirty = false
	return was
}

// Len returns the number of mapped pages.
func (t *InvertedTable) Len() int { return t.size }

// Stats returns map/unmap operation counts.
func (t *InvertedTable) Stats() (maps, unmaps uint64) { return t.maps, t.unmaps }

// ProbeStats returns total table operations (lookups, dirty/ref updates)
// and chain probes; probes/lookups is the software walk cost as load
// rises.
func (t *InvertedTable) ProbeStats() (lookups, probes uint64) { return t.lookups, t.probes }
