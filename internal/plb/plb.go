// Package plb implements the Protection Lookaside Buffer of Section 3.2.1:
// a cache of protection-only mappings on a per-domain, per-page basis.
// Each entry grants one protection domain's access rights to one virtual
// protection page; it carries no translation information, which is what
// lets the PLB sit beside a virtually indexed, virtually tagged cache with
// the TLB demoted to a second level off the critical path (Figure 1).
//
// Because protection is decoupled from translation, the PLB's protection
// page size need not equal the translation page size (Section 4.3): a PLB
// may support sub-page entries (for fine-grained uses like DSM and
// transactional locking) and super-page entries (one entry covering a
// whole constant-rights segment), simultaneously.
package plb

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/addr"
	"repro/internal/assoc"
	"repro/internal/stats"
)

// ErrConfig classifies invalid PLB configurations. errors.Is(err,
// ErrConfig) matches every construction failure; errors.As extracts
// the *ConfigError carrying the offending field.
var ErrConfig = errors.New("plb: invalid config")

// ConfigError is the structured form of a rejected configuration,
// following the kernel.FaultError convention: context fields plus a
// classifying sentinel, all reachable through errors.Is/As.
type ConfigError struct {
	// Field names the Config field that was rejected.
	Field string
	// Detail says what was wrong with it.
	Detail string
	// Sentinel classifies the failure (ErrConfig).
	Sentinel error
}

// Error implements error.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("%s: %s: %s", e.Sentinel.Error(), e.Field, e.Detail)
}

// Unwrap exposes the sentinel to errors.Is.
func (e *ConfigError) Unwrap() error { return e.Sentinel }

func cfgErr(field, format string, args ...any) error {
	return &ConfigError{Field: field, Detail: fmt.Sprintf(format, args...), Sentinel: ErrConfig}
}

// Key identifies a PLB entry: one domain's rights to one protection page
// of a particular size class.
type Key struct {
	Domain addr.DomainID
	// Page is the protection page number: VA >> Shift.
	Page uint64
	// Shift is the log2 protection page size of this entry.
	Shift uint8
}

// Config describes a PLB.
type Config struct {
	// Assoc is the geometry of the underlying structure.
	Assoc assoc.Config
	// Shifts lists the supported protection page sizes (log2, ascending).
	// A single-size PLB lists one shift, typically the base page shift.
	Shifts []uint
}

// DefaultConfig returns a 128-entry fully associative LRU PLB with 4 KB
// protection pages. 128 entries matches the paper's observation that PLB
// entries are ~25% smaller than page-group TLB entries, so a PLB fits
// more entries in the same silicon than the TLB it replaces.
func DefaultConfig() Config {
	return Config{
		Assoc:  assoc.Config{Sets: 1, Ways: 128, Policy: assoc.LRU},
		Shifts: []uint{addr.BasePageShift},
	}
}

// PLB is the protection lookaside buffer. Construct with New. A PLB probes
// every supported size class on lookup, modeling the parallel multi-size
// match of a real multiple-page-size TLB (Talluri et al., cited in §4.3).
type PLB struct {
	cfg    Config
	c      *assoc.Cache[Key, addr.Rights]
	shifts []uint
	// shifts8 mirrors shifts pre-narrowed to the Key width, so the
	// per-access probe loop builds keys without conversions; shift0 is
	// the sole size class of a single-size PLB (the common case), letting
	// Lookup skip the loop entirely.
	shifts8 []uint8
	shift0  uint8

	nHit, nMiss, nInstall, nUpdate, nInval, nPurged, nInspected stats.Handle
	nCorrupted                                                  stats.Handle

	corrupt Corruptor

	// lastKey is the key of the most recent Lookup hit or Insert, paired
	// with the underlying cache's LastSlot — so the verdict fast path can
	// learn where a structural access's entry lives without re-scanning.
	lastKey Key
}

// Corruptor is a chaos-testing hook consulted on every Insert. It sees
// the entry being installed and whether the install evicted a victim,
// and may return replacement rights with true to corrupt the entry in
// place (modeling a bit flip or stale rights latched by glitching
// hardware). Corrupted installs are counted under prefix+".corrupted".
// Production configurations leave it nil; it costs one nil check.
type Corruptor func(k Key, r addr.Rights, evicted bool) (addr.Rights, bool)

// New creates a PLB, recording events in ctrs under the given name prefix
// (e.g. "plb"). An invalid configuration returns a *ConfigError wrapping
// ErrConfig; MustNew panics instead for known-good configurations.
// Counter names are resolved to handles here, once, so the per-access
// paths never hash a counter name.
func New(cfg Config, ctrs *stats.Counters, prefix string) (*PLB, error) {
	if len(cfg.Shifts) == 0 {
		return nil, cfgErr("Shifts", "must list at least one protection page shift")
	}
	shifts := append([]uint(nil), cfg.Shifts...)
	sort.Slice(shifts, func(i, j int) bool { return shifts[i] < shifts[j] })
	for _, s := range shifts {
		if s < addr.MinProtShift || s > addr.MaxProtShift {
			return nil, cfgErr("Shifts", "shift %d outside [%d,%d]", s, addr.MinProtShift, addr.MaxProtShift)
		}
	}
	p := &PLB{
		cfg:    cfg,
		shifts: shifts,
	}
	p.shifts8 = make([]uint8, len(shifts))
	for i, s := range shifts {
		p.shifts8[i] = uint8(s)
	}
	p.shift0 = p.shifts8[0]
	p.c = assoc.New[Key, addr.Rights](cfg.Assoc, func(k Key) uint64 {
		return k.Page ^ uint64(k.Domain)<<13 ^ uint64(k.Shift)<<29
	})
	p.nHit = ctrs.Handle(prefix + ".hit")
	p.nMiss = ctrs.Handle(prefix + ".miss")
	p.nInstall = ctrs.Handle(prefix + ".install")
	p.nUpdate = ctrs.Handle(prefix + ".update")
	p.nInval = ctrs.Handle(prefix + ".invalidate")
	p.nPurged = ctrs.Handle(prefix + ".purged")
	p.nInspected = ctrs.Handle(prefix + ".inspected")
	p.nCorrupted = ctrs.Handle(prefix + ".corrupted")
	return p, nil
}

// MustNew is New for configurations known to be valid (fixed defaults,
// tests); it panics on a config error.
func MustNew(cfg Config, ctrs *stats.Counters, prefix string) *PLB {
	p, err := New(cfg, ctrs, prefix)
	if err != nil {
		panic(err)
	}
	return p
}

// SetCorruptor installs (or, with nil, removes) the corruption hook.
func (p *PLB) SetCorruptor(fn Corruptor) { p.corrupt = fn }

// Shifts returns the supported protection page shifts, ascending.
func (p *PLB) Shifts() []uint { return append([]uint(nil), p.shifts...) }

// Capacity returns the total entry capacity.
func (p *PLB) Capacity() int { return p.c.Capacity() }

// Len returns the number of valid entries.
func (p *PLB) Len() int { return p.c.Len() }

// Lookup probes the PLB for (d, va) across all size classes. On a hit it
// returns the entry's rights. Smaller (more specific) protection pages
// take precedence over larger ones, so a sub-page override shadows a
// segment-wide super-page entry.
func (p *PLB) Lookup(d addr.DomainID, va addr.VA) (addr.Rights, bool) {
	if len(p.shifts8) == 1 {
		// Single size class: one probe, no loop.
		k := Key{Domain: d, Page: uint64(va) >> p.shift0, Shift: p.shift0}
		if r, ok := p.c.Lookup(k); ok {
			p.nHit.Inc()
			p.lastKey = k
			return r, true
		}
		p.nMiss.Inc()
		return addr.None, false
	}
	for _, shift := range p.shifts8 {
		k := Key{Domain: d, Page: uint64(va) >> shift, Shift: shift}
		if r, ok := p.c.Lookup(k); ok {
			p.nHit.Inc()
			p.lastKey = k
			return r, true
		}
	}
	p.nMiss.Inc()
	return addr.None, false
}

// LastRef returns the slot and key of the most recent Lookup hit or
// Insert. The slot may have been evicted or reused since; validate with
// PeekAt (and check the key still covers the address of interest).
func (p *PLB) LastRef() (set, way int, k Key) {
	set, way = p.c.LastSlot()
	return set, way, p.lastKey
}

// Probe locates the entry a Lookup for (d, va) would hit — honoring the
// smaller-page-shadows-larger precedence — with no replacement or counter
// side effects. It returns the slot, the matched key, and its rights, for
// later validation with PeekAt and replay with ReplayHit.
func (p *PLB) Probe(d addr.DomainID, va addr.VA) (set, way int, k Key, r addr.Rights, ok bool) {
	for _, shift := range p.shifts8 {
		k = Key{Domain: d, Page: uint64(va) >> shift, Shift: shift}
		if s, w, found := p.c.Locate(k); found {
			r, _ = p.c.PeekAt(s, w, k)
			return s, w, k, r, true
		}
	}
	return 0, 0, Key{}, addr.None, false
}

// PeekAt returns the rights at the located slot if it still holds a live
// entry for k, with no side effects — the validation half of the verdict
// fast path.
func (p *PLB) PeekAt(set, way int, k Key) (addr.Rights, bool) {
	return p.c.PeekAt(set, way, k)
}

// ReplayHit replays the exact side effects of a Lookup hit on the slot
// located by Probe: the LRU touch and the hit counter.
func (p *PLB) ReplayHit(set, way int) {
	p.c.TouchAt(set, way)
	p.nHit.Inc()
}

// Insert installs rights for (d, va) at the given protection page shift.
// The shift must be one of the configured size classes.
func (p *PLB) Insert(d addr.DomainID, va addr.VA, shift uint, r addr.Rights) {
	p.mustShift(shift)
	k := Key{Domain: d, Page: uint64(va) >> shift, Shift: uint8(shift)}
	_, _, evicted := p.c.Insert(k, r)
	p.lastKey = k
	p.nInstall.Inc()
	if p.corrupt != nil {
		if bad, ok := p.corrupt(k, r, evicted); ok {
			p.c.Update(k, bad)
			p.nCorrupted.Inc()
		}
	}
}

func (p *PLB) mustShift(shift uint) {
	for _, s := range p.shifts {
		if s == shift {
			return
		}
	}
	panic(fmt.Sprintf("plb: shift %d not a configured size class %v", shift, p.shifts))
}

// Update changes the rights of the entry covering (d, va) if one is
// resident, preserving its replacement state, and reports whether an entry
// was found. This is the single-entry update that makes per-domain rights
// changes cheap in the domain-page model (Section 4.1.2).
func (p *PLB) Update(d addr.DomainID, va addr.VA, r addr.Rights) bool {
	for _, shift := range p.shifts8 {
		k := Key{Domain: d, Page: uint64(va) >> shift, Shift: shift}
		if p.c.Update(k, r) {
			p.nUpdate.Inc()
			return true
		}
	}
	return false
}

// Invalidate removes any entry covering (d, va), reporting whether one was
// present.
func (p *PLB) Invalidate(d addr.DomainID, va addr.VA) bool {
	found := false
	for _, shift := range p.shifts8 {
		k := Key{Domain: d, Page: uint64(va) >> shift, Shift: shift}
		if p.c.Invalidate(k) {
			found = true
		}
	}
	if found {
		p.nInval.Inc()
	}
	return found
}

// UpdateRange rewrites the rights of all of domain d's resident entries
// overlapping the byte range [start, start+length), returning how many
// were updated. Like PurgeRange it must inspect every resident entry —
// the "inspect each entry in the PLB" cost of the Table 1 operations that
// change a domain's rights to a whole segment (GC flip, checkpoint
// restrict).
func (p *PLB) UpdateRange(d addr.DomainID, start addr.VA, length uint64, r addr.Rights) int {
	rng := addr.Range{Start: start, Length: length}
	updated, inspected := p.c.UpdateIf(func(k Key, _ addr.Rights) bool {
		if k.Domain != d {
			return false
		}
		size := uint64(1) << k.Shift
		entry := addr.Range{Start: addr.VA(k.Page << k.Shift), Length: size}
		return entry.Overlaps(rng)
	}, func(Key, addr.Rights) addr.Rights { return r })
	p.nUpdate.Add(uint64(updated))
	p.nInspected.Add(uint64(inspected))
	return updated
}

// PurgeRange removes all of domain d's entries overlapping the byte range
// [start, start+length), returning how many were removed. This is the
// detach operation of Section 4.1.1: in the worst case it inspects every
// PLB entry; the inspection count is recorded for the cost model.
func (p *PLB) PurgeRange(d addr.DomainID, start addr.VA, length uint64) int {
	r := addr.Range{Start: start, Length: length}
	removed, inspected := p.c.PurgeIf(func(k Key, _ addr.Rights) bool {
		if k.Domain != d {
			return false
		}
		size := uint64(1) << k.Shift
		entry := addr.Range{Start: addr.VA(k.Page << k.Shift), Length: size}
		return entry.Overlaps(r)
	})
	p.nPurged.Add(uint64(removed))
	p.nInspected.Add(uint64(inspected))
	return removed
}

// PurgeRangeAll removes every domain's entries overlapping the byte
// range (used when a segment is destroyed).
func (p *PLB) PurgeRangeAll(start addr.VA, length uint64) int {
	r := addr.Range{Start: start, Length: length}
	removed, inspected := p.c.PurgeIf(func(k Key, _ addr.Rights) bool {
		size := uint64(1) << k.Shift
		entry := addr.Range{Start: addr.VA(k.Page << k.Shift), Length: size}
		return entry.Overlaps(r)
	})
	p.nPurged.Add(uint64(removed))
	p.nInspected.Add(uint64(inspected))
	return removed
}

// PurgeDomain removes all entries belonging to domain d.
func (p *PLB) PurgeDomain(d addr.DomainID) int {
	removed, inspected := p.c.PurgeIf(func(k Key, _ addr.Rights) bool { return k.Domain == d })
	p.nPurged.Add(uint64(removed))
	p.nInspected.Add(uint64(inspected))
	return removed
}

// PurgePage removes every domain's entry covering va: needed when a page's
// rights change for all domains or its translation is destroyed.
func (p *PLB) PurgePage(va addr.VA) int {
	removed, inspected := p.c.PurgeIf(func(k Key, _ addr.Rights) bool {
		size := uint64(1) << k.Shift
		entry := addr.Range{Start: addr.VA(k.Page << k.Shift), Length: size}
		return entry.Contains(va)
	})
	p.nPurged.Add(uint64(removed))
	p.nInspected.Add(uint64(inspected))
	return removed
}

// PurgeAll empties the PLB, returning how many entries were dropped.
func (p *PLB) PurgeAll() int {
	n := p.c.PurgeAll()
	p.nPurged.Add(uint64(n))
	return n
}

// ForEach visits all resident entries until fn returns false.
func (p *PLB) ForEach(fn func(Key, addr.Rights) bool) { p.c.ForEach(fn) }

// EntryBits returns the architectural width of one PLB entry in bits for a
// fully associative organization: VPN tag + PD-ID + rights (Figure 1).
// It is used by the equal-silicon comparison of Section 4.
func EntryBits(vaBits, pageShift, domainBits, rightsBits int) int {
	return (vaBits - pageShift) + domainBits + rightsBits
}
