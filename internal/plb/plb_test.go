package plb

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/addr"
	"repro/internal/assoc"
	"repro/internal/stats"
)

func newTestPLB(t *testing.T, ways int, shifts ...uint) (*PLB, *stats.Counters) {
	t.Helper()
	if len(shifts) == 0 {
		shifts = []uint{addr.BasePageShift}
	}
	ctrs := &stats.Counters{}
	p := MustNew(Config{
		Assoc:  assoc.Config{Sets: 1, Ways: ways, Policy: assoc.LRU},
		Shifts: shifts,
	}, ctrs, "plb")
	return p, ctrs
}

func TestLookupMissThenHit(t *testing.T) {
	p, ctrs := newTestPLB(t, 8)
	if _, ok := p.Lookup(1, 0x1000); ok {
		t.Fatal("hit on empty PLB")
	}
	p.Insert(1, 0x1000, addr.BasePageShift, addr.RW)
	r, ok := p.Lookup(1, 0x1abc) // same page, different offset
	if !ok || r != addr.RW {
		t.Fatalf("Lookup = %v,%v", r, ok)
	}
	if ctrs.Get("plb.hit") != 1 || ctrs.Get("plb.miss") != 1 || ctrs.Get("plb.install") != 1 {
		t.Fatalf("counters: %v", ctrs.Snapshot())
	}
}

func TestPerDomainEntries(t *testing.T) {
	p, _ := newTestPLB(t, 8)
	// Two domains sharing a page hold separate entries with separate
	// rights — the duplication the paper describes.
	p.Insert(1, 0x1000, addr.BasePageShift, addr.RW)
	p.Insert(2, 0x1000, addr.BasePageShift, addr.Read)
	if r, _ := p.Lookup(1, 0x1000); r != addr.RW {
		t.Fatal("domain 1 rights wrong")
	}
	if r, _ := p.Lookup(2, 0x1000); r != addr.Read {
		t.Fatal("domain 2 rights wrong")
	}
	if _, ok := p.Lookup(3, 0x1000); ok {
		t.Fatal("unrelated domain hit")
	}
	if p.Len() != 2 {
		t.Fatalf("Len = %d", p.Len())
	}
}

func TestUpdateSingleDomain(t *testing.T) {
	p, ctrs := newTestPLB(t, 8)
	p.Insert(1, 0x1000, addr.BasePageShift, addr.RW)
	p.Insert(2, 0x1000, addr.BasePageShift, addr.RW)
	// Changing one domain's rights must not affect the other (the PLB's
	// key property, Section 4.1.2).
	if !p.Update(1, 0x1000, addr.None) {
		t.Fatal("Update returned false")
	}
	if r, _ := p.Lookup(1, 0x1000); r != addr.None {
		t.Fatal("update lost")
	}
	if r, _ := p.Lookup(2, 0x1000); r != addr.RW {
		t.Fatal("other domain's rights disturbed")
	}
	if p.Update(9, 0x1000, addr.Read) {
		t.Fatal("Update for absent entry returned true")
	}
	if ctrs.Get("plb.update") != 1 {
		t.Fatalf("update counter = %d", ctrs.Get("plb.update"))
	}
}

func TestInvalidate(t *testing.T) {
	p, _ := newTestPLB(t, 8)
	p.Insert(1, 0x1000, addr.BasePageShift, addr.RW)
	if !p.Invalidate(1, 0x1000) {
		t.Fatal("Invalidate returned false")
	}
	if p.Invalidate(1, 0x1000) {
		t.Fatal("double Invalidate returned true")
	}
	if _, ok := p.Lookup(1, 0x1000); ok {
		t.Fatal("entry survives Invalidate")
	}
}

func TestPurgeRangeOnlyTargetDomain(t *testing.T) {
	p, ctrs := newTestPLB(t, 32)
	// Domain 1 attached to pages 0..7; domain 2 to the same pages.
	for vpn := uint64(0); vpn < 8; vpn++ {
		p.Insert(1, addr.VA(vpn<<addr.BasePageShift), addr.BasePageShift, addr.RW)
		p.Insert(2, addr.VA(vpn<<addr.BasePageShift), addr.BasePageShift, addr.Read)
	}
	// Detach pages 2..5 from domain 1.
	removed := p.PurgeRange(1, addr.VA(2<<addr.BasePageShift), 4<<addr.BasePageShift)
	if removed != 4 {
		t.Fatalf("removed = %d", removed)
	}
	if p.Len() != 12 {
		t.Fatalf("Len = %d", p.Len())
	}
	// The scan inspected every resident entry (worst case per §4.1.1).
	if ctrs.Get("plb.inspected") != 16 {
		t.Fatalf("inspected = %d", ctrs.Get("plb.inspected"))
	}
	for vpn := uint64(0); vpn < 8; vpn++ {
		if _, ok := p.Lookup(2, addr.VA(vpn<<addr.BasePageShift)); !ok {
			t.Fatalf("domain 2 entry for page %d purged", vpn)
		}
	}
}

func TestPurgeDomainAndAll(t *testing.T) {
	p, _ := newTestPLB(t, 16)
	for vpn := uint64(0); vpn < 4; vpn++ {
		p.Insert(1, addr.VA(vpn<<12), addr.BasePageShift, addr.RW)
		p.Insert(2, addr.VA(vpn<<12), addr.BasePageShift, addr.RW)
	}
	if n := p.PurgeDomain(1); n != 4 {
		t.Fatalf("PurgeDomain = %d", n)
	}
	if p.Len() != 4 {
		t.Fatalf("Len = %d", p.Len())
	}
	if n := p.PurgeAll(); n != 4 {
		t.Fatalf("PurgeAll = %d", n)
	}
}

func TestPurgePageAllDomains(t *testing.T) {
	p, _ := newTestPLB(t, 16)
	p.Insert(1, 0x1000, addr.BasePageShift, addr.RW)
	p.Insert(2, 0x1000, addr.BasePageShift, addr.Read)
	p.Insert(1, 0x2000, addr.BasePageShift, addr.RW)
	if n := p.PurgePage(0x1000); n != 2 {
		t.Fatalf("PurgePage = %d", n)
	}
	if _, ok := p.Lookup(1, 0x2000); !ok {
		t.Fatal("unrelated page purged")
	}
}

func TestSubPageEntriesShadowSuperPage(t *testing.T) {
	// PLB with 512B sub-pages, 4K pages and 64K super-pages.
	p, _ := newTestPLB(t, 32, 9, addr.BasePageShift, 16)
	// Whole 64K region readable via one super-page entry.
	p.Insert(1, 0x10000, 16, addr.Read)
	if r, ok := p.Lookup(1, 0x1ffff); !ok || r != addr.Read {
		t.Fatalf("super-page lookup = %v,%v", r, ok)
	}
	// A 512B sub-page within it becomes read-write: more specific wins.
	p.Insert(1, 0x10200, 9, addr.RW)
	if r, _ := p.Lookup(1, 0x10201); r != addr.RW {
		t.Fatal("sub-page entry did not shadow super-page")
	}
	if r, _ := p.Lookup(1, 0x10400); r != addr.Read {
		t.Fatal("addresses outside sub-page affected")
	}
}

// TestInvalidateRemovesAllSizeClasses is the §4.1.2 shootdown-safety
// regression test: Invalidate for a (domain, va) must remove the entry
// at every configured size class, including a super-page entry installed
// under ProtShift, even when the caller names a base-page address inside
// it. A survivor would be exactly the stale-authority entry the shadow
// oracle flags after a remote rights revocation.
func TestInvalidateRemovesAllSizeClasses(t *testing.T) {
	p, _ := newTestPLB(t, 8, addr.BasePageShift, 16)
	p.Insert(1, 0x10000, 16, addr.RW)                 // super-page covering [0x10000, 0x20000)
	p.Insert(1, 0x11000, addr.BasePageShift, addr.RW) // base page inside it
	if !p.Invalidate(1, 0x11000) {
		t.Fatal("Invalidate found nothing")
	}
	if r, ok := p.Lookup(1, 0x11000); ok {
		t.Fatalf("stale rights %v survive at the invalidated address", r)
	}
	if r, ok := p.Lookup(1, 0x10000); ok {
		t.Fatalf("stale super-page rights %v survive invalidation of a covered base page", r)
	}
	// A super-page entry alone is also removed when the caller names any
	// base-page address it covers, not just its own base address.
	p.Insert(1, 0x30000, 16, addr.Read)
	if !p.Invalidate(1, 0x3f000) {
		t.Fatal("Invalidate via covered base address found nothing")
	}
	if _, ok := p.Lookup(1, 0x31000); ok {
		t.Fatal("super-page at 0x30000 survived invalidation via a covered address")
	}
}

func TestPurgeRangeRemovesOverlappingSuperPages(t *testing.T) {
	p, _ := newTestPLB(t, 8, addr.BasePageShift, 16)
	p.Insert(1, 0x10000, 16, addr.Read) // covers [0x10000, 0x20000)
	// Purging any sub-range of the super-page must remove it.
	if n := p.PurgeRange(1, 0x11000, 0x1000); n != 1 {
		t.Fatalf("purge = %d", n)
	}
	if _, ok := p.Lookup(1, 0x10000); ok {
		t.Fatal("overlapping super-page survived purge")
	}
}

func TestInsertBadShiftPanics(t *testing.T) {
	p, _ := newTestPLB(t, 8)
	defer func() {
		if recover() == nil {
			t.Error("Insert with unconfigured shift did not panic")
		}
	}()
	p.Insert(1, 0, 16, addr.Read)
}

func TestNewValidation(t *testing.T) {
	ctrs := &stats.Counters{}
	for name, cfg := range map[string]Config{
		"no shifts": {Assoc: assoc.Config{Sets: 1, Ways: 4}},
		"bad shift": {Assoc: assoc.Config{Sets: 1, Ways: 4}, Shifts: []uint{3}},
	} {
		p, err := New(cfg, ctrs, "plb")
		if err == nil {
			t.Errorf("%s: New accepted an invalid config", name)
			continue
		}
		if p != nil {
			t.Errorf("%s: New returned a PLB alongside the error", name)
		}
		if !errors.Is(err, ErrConfig) {
			t.Errorf("%s: error %v does not wrap ErrConfig", name, err)
		}
		var ce *ConfigError
		if !errors.As(err, &ce) || ce.Field != "Shifts" {
			t.Errorf("%s: error %v is not a *ConfigError on Shifts", name, err)
		}
	}
	// MustNew converts the typed error into a panic for known-good
	// call sites.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustNew did not panic on an invalid config")
			}
		}()
		MustNew(Config{}, ctrs, "plb")
	}()
}

func TestEntryBits(t *testing.T) {
	// Figure 1: 52-bit VPN + 16-bit PD-ID + 3-bit rights = 71 bits.
	if got := EntryBits(addr.VABits, addr.BasePageShift, addr.DomainBits, addr.RightsBits); got != 71 {
		t.Fatalf("EntryBits = %d, want 71", got)
	}
}

// Property: after any insert sequence, Lookup(d,va) never returns rights
// that were not the most recent Insert/Update for that (domain, page).
func TestLookupReturnsLatest(t *testing.T) {
	f := func(ops []struct {
		D uint8
		P uint8
		R uint8
	}) bool {
		p, _ := newTestPLB(t, 512)
		want := map[Key]addr.Rights{}
		for _, op := range ops {
			d := addr.DomainID(op.D % 4)
			va := addr.VA(uint64(op.P%16) << addr.BasePageShift)
			r := addr.Rights(op.R % 8)
			p.Insert(d, va, addr.BasePageShift, r)
			want[Key{Domain: d, Page: uint64(va) >> addr.BasePageShift, Shift: addr.BasePageShift}] = r
		}
		ok := true
		p.ForEach(func(k Key, r addr.Rights) bool {
			if want[k] != r {
				ok = false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDefaultConfig(t *testing.T) {
	ctrs := &stats.Counters{}
	p := MustNew(DefaultConfig(), ctrs, "plb")
	if p.Capacity() != 128 {
		t.Fatalf("capacity = %d", p.Capacity())
	}
	if shifts := p.Shifts(); len(shifts) != 1 || shifts[0] != addr.BasePageShift {
		t.Fatalf("shifts = %v", shifts)
	}
}

func TestUpdateRange(t *testing.T) {
	p, ctrs := newTestPLB(t, 32)
	for vpn := uint64(0); vpn < 8; vpn++ {
		p.Insert(1, addr.VA(vpn<<addr.BasePageShift), addr.BasePageShift, addr.RW)
		p.Insert(2, addr.VA(vpn<<addr.BasePageShift), addr.BasePageShift, addr.RW)
	}
	// Revoke domain 1's access to pages 2..5 (a GC-flip style change).
	n := p.UpdateRange(1, addr.VA(2<<addr.BasePageShift), 4<<addr.BasePageShift, addr.None)
	if n != 4 {
		t.Fatalf("UpdateRange = %d", n)
	}
	for vpn := uint64(0); vpn < 8; vpn++ {
		va := addr.VA(vpn << addr.BasePageShift)
		r1, _ := p.Lookup(1, va)
		r2, _ := p.Lookup(2, va)
		want1 := addr.RW
		if vpn >= 2 && vpn < 6 {
			want1 = addr.None
		}
		if r1 != want1 {
			t.Errorf("domain 1 page %d rights = %v, want %v", vpn, r1, want1)
		}
		if r2 != addr.RW {
			t.Errorf("domain 2 page %d disturbed: %v", vpn, r2)
		}
	}
	if ctrs.Get("plb.inspected") != 16 {
		t.Fatalf("inspected = %d", ctrs.Get("plb.inspected"))
	}
}
