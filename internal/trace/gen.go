package trace

import (
	"math/rand"

	"repro/internal/addr"
)

// Gen produces synthetic reference streams. Construct with NewGen; all
// streams are deterministic per seed.
type Gen struct {
	rng *rand.Rand
	geo addr.Geometry
}

// NewGen creates a generator with the given seed and page geometry.
func NewGen(seed int64, geo addr.Geometry) *Gen {
	return &Gen{rng: rand.New(rand.NewSource(seed)), geo: geo}
}

// Sequential emits n references sweeping from start with the given byte
// stride, storePercent of them stores.
func (g *Gen) Sequential(d addr.DomainID, start addr.VA, n int, stride uint64, storePercent int) []Record {
	out := make([]Record, 0, n)
	va := start
	for i := 0; i < n; i++ {
		kind := addr.Load
		if g.rng.Intn(100) < storePercent {
			kind = addr.Store
		}
		out = append(out, Record{Domain: d, VA: va, Kind: kind})
		va += addr.VA(stride)
	}
	return out
}

// WorkingSet emits n references confined to a working set of wsPages
// pages starting at base, uniformly random within it.
func (g *Gen) WorkingSet(d addr.DomainID, base addr.VA, wsPages uint64, n int, storePercent int) []Record {
	out := make([]Record, 0, n)
	ps := g.geo.PageSize()
	for i := 0; i < n; i++ {
		page := uint64(g.rng.Intn(int(wsPages)))
		off := uint64(g.rng.Intn(int(ps/8))) * 8
		kind := addr.Load
		if g.rng.Intn(100) < storePercent {
			kind = addr.Store
		}
		out = append(out, Record{Domain: d, VA: base + addr.VA(page*ps+off), Kind: kind})
	}
	return out
}

// Zipf emits n references over npages pages with Zipfian popularity
// (skew s > 1), modeling hot-page locality.
func (g *Gen) Zipf(d addr.DomainID, base addr.VA, npages uint64, n int, s float64, storePercent int) []Record {
	if s <= 1 {
		s = 1.07
	}
	z := rand.NewZipf(g.rng, s, 1, npages-1)
	out := make([]Record, 0, n)
	ps := g.geo.PageSize()
	for i := 0; i < n; i++ {
		page := z.Uint64()
		kind := addr.Load
		if g.rng.Intn(100) < storePercent {
			kind = addr.Store
		}
		out = append(out, Record{Domain: d, VA: base + addr.VA(page*ps), Kind: kind})
	}
	return out
}

// SharedMixConfig configures the multiprogrammed sharing stream of
// SharedMix.
type SharedMixConfig struct {
	// Domains is the number of protection domains.
	Domains int
	// PrivatePages is each domain's private working set, placed at
	// PrivateBase + domain*PrivatePages pages.
	PrivatePages uint64
	// SharedPages is the size of the region all domains share, at
	// SharedBase.
	SharedPages uint64
	// SharedPercent is the probability (0-100) a reference goes to the
	// shared region.
	SharedPercent int
	// StorePercent is the probability (0-100) a reference is a store.
	StorePercent int
	// Quantum is the number of references a domain issues before the
	// stream switches to the next domain (the context-switch interval).
	Quantum int
	// Records is the total stream length.
	Records int
	// OffsetWords confines references to the first OffsetWords 64-bit
	// words of each page, controlling the cache footprint independently
	// of the page footprint (0 means the whole page).
	OffsetWords int
	// PrivateBase and SharedBase anchor the two regions.
	PrivateBase, SharedBase addr.VA
}

// DefaultSharedMix returns 4 domains with 16-page private sets sharing an
// 8-page region on 10% of references, switching every 100 references.
// References stay within the first 512 bytes of each page so the working
// set fits a 64 KB cache once warm.
func DefaultSharedMix() SharedMixConfig {
	return SharedMixConfig{
		Domains:       4,
		PrivatePages:  16,
		SharedPages:   8,
		SharedPercent: 10,
		StorePercent:  30,
		Quantum:       100,
		Records:       20000,
		OffsetWords:   64,
		PrivateBase:   addr.VA(1) << 33,
		SharedBase:    addr.VA(1) << 32,
	}
}

// SharedMix emits a multiprogrammed stream: domains run in round-robin
// quanta, each referencing its private working set and a shared region —
// the workload shape behind the sharing and domain-switch experiments
// (Sections 3.1 and 4.1.4).
func (g *Gen) SharedMix(cfg SharedMixConfig) []Record {
	out := make([]Record, 0, cfg.Records)
	ps := g.geo.PageSize()
	offWords := cfg.OffsetWords
	if offWords <= 0 || uint64(offWords) > ps/8 {
		offWords = int(ps / 8)
	}
	dom := 0
	for len(out) < cfg.Records {
		d := addr.DomainID(dom + 1)
		for q := 0; q < cfg.Quantum && len(out) < cfg.Records; q++ {
			var va addr.VA
			if g.rng.Intn(100) < cfg.SharedPercent {
				page := uint64(g.rng.Intn(int(cfg.SharedPages)))
				va = cfg.SharedBase + addr.VA(page*ps)
			} else {
				page := uint64(dom)*cfg.PrivatePages + uint64(g.rng.Intn(int(cfg.PrivatePages)))
				va = cfg.PrivateBase + addr.VA(page*ps)
			}
			off := uint64(g.rng.Intn(offWords)) * 8
			kind := addr.Load
			if g.rng.Intn(100) < cfg.StorePercent {
				kind = addr.Store
			}
			out = append(out, Record{Domain: d, VA: va + addr.VA(off), Kind: kind})
		}
		dom = (dom + 1) % cfg.Domains
	}
	return out
}
