// Package trace provides the memory-reference trace tooling used by the
// machine-level experiments: a compact binary trace format, synthetic
// reference-stream generators with controllable locality and sharing, and
// a trace-driven driver that replays a trace against any machine model.
//
// The paper's evaluation reasons about structure behaviour under
// reference streams (PLB/TLB hit ratios, duplication under sharing,
// domain-switch costs); production traces from 1992 are unavailable, so
// generators parameterized by working-set size, skew and sharing degree
// stand in for them. Every experiment records its generator parameters.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/addr"
)

// Record is one memory reference: which domain issued it, where, and how.
type Record struct {
	Domain addr.DomainID
	VA     addr.VA
	Kind   addr.AccessKind
}

// magic identifies the binary trace format, versioned.
var magic = [8]byte{'S', 'A', 'S', 'T', 'R', 'C', '0', '1'}

// Writer streams records to an io.Writer in the binary trace format.
type Writer struct {
	w     *bufio.Writer
	count uint64
	begun bool
}

// NewWriter creates a trace writer. Call Flush when done.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

// Write appends one record.
func (t *Writer) Write(r Record) error {
	if !t.begun {
		if _, err := t.w.Write(magic[:]); err != nil {
			return err
		}
		t.begun = true
	}
	var buf [binary.MaxVarintLen64 * 2]byte
	n := binary.PutUvarint(buf[:], uint64(r.Domain))
	buf[n] = byte(r.Kind)
	n++
	n += binary.PutUvarint(buf[n:], uint64(r.VA))
	if _, err := t.w.Write(buf[:n]); err != nil {
		return err
	}
	t.count++
	return nil
}

// Count returns records written so far.
func (t *Writer) Count() uint64 { return t.count }

// Flush flushes buffered output.
func (t *Writer) Flush() error {
	if !t.begun {
		if _, err := t.w.Write(magic[:]); err != nil {
			return err
		}
		t.begun = true
	}
	return t.w.Flush()
}

// Reader streams records from the binary trace format.
type Reader struct {
	r      *bufio.Reader
	header bool
}

// NewReader creates a trace reader.
func NewReader(r io.Reader) *Reader { return &Reader{r: bufio.NewReader(r)} }

// ErrBadTrace reports a malformed trace.
var ErrBadTrace = errors.New("trace: malformed trace")

// Read returns the next record, or io.EOF at the end.
func (t *Reader) Read() (Record, error) {
	if !t.header {
		var h [8]byte
		if _, err := io.ReadFull(t.r, h[:]); err != nil {
			if err == io.EOF {
				return Record{}, io.EOF
			}
			return Record{}, fmt.Errorf("%w: short header: %v", ErrBadTrace, err)
		}
		if h != magic {
			return Record{}, fmt.Errorf("%w: bad magic %q", ErrBadTrace, h[:])
		}
		t.header = true
	}
	d, err := binary.ReadUvarint(t.r)
	if err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	kb, err := t.r.ReadByte()
	if err != nil {
		return Record{}, fmt.Errorf("%w: truncated record: %v", ErrBadTrace, err)
	}
	if kb > byte(addr.Fetch) {
		return Record{}, fmt.Errorf("%w: bad access kind %d", ErrBadTrace, kb)
	}
	va, err := binary.ReadUvarint(t.r)
	if err != nil {
		return Record{}, fmt.Errorf("%w: truncated record: %v", ErrBadTrace, err)
	}
	if d > 0xffff {
		return Record{}, fmt.Errorf("%w: domain %d out of range", ErrBadTrace, d)
	}
	return Record{Domain: addr.DomainID(d), VA: addr.VA(va), Kind: addr.AccessKind(kb)}, nil
}

// ReadAll drains the reader into a slice.
func (t *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		r, err := t.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
}
