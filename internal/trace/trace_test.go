package trace

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"repro/internal/addr"
	"repro/internal/machine"
)

func TestWriteReadRoundTrip(t *testing.T) {
	records := []Record{
		{Domain: 1, VA: 0x1000, Kind: addr.Load},
		{Domain: 2, VA: 0xdeadbeef000, Kind: addr.Store},
		{Domain: 0xffff, VA: 1<<63 | 5, Kind: addr.Fetch},
		{Domain: 1, VA: 0, Kind: addr.Load},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range records {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != uint64(len(records)) {
		t.Fatalf("Count = %d", w.Count())
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(records) {
		t.Fatalf("read %d records, want %d", len(got), len(records))
	}
	for i := range got {
		if got[i] != records[i] {
			t.Errorf("record %d: %+v != %+v", i, got[i], records[i])
		}
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil || len(got) != 0 {
		t.Fatalf("empty trace: %v, %d records", err, len(got))
	}
}

func TestBadMagic(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte("NOTATRACE")))
	if _, err := r.Read(); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Write(Record{Domain: 1, VA: 0x123456789, Kind: addr.Load})
	w.Flush()
	data := buf.Bytes()[:buf.Len()-2]
	r := NewReader(bytes.NewReader(data))
	_, err := r.Read()
	if err == nil {
		// First read may succeed if truncation hit a later field; drain.
		_, err = r.Read()
	}
	if err == nil || err == io.EOF {
		t.Fatalf("truncated trace read: %v", err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(doms []uint16, vas []uint64, kinds []uint8) bool {
		n := len(doms)
		if len(vas) < n {
			n = len(vas)
		}
		if len(kinds) < n {
			n = len(kinds)
		}
		recs := make([]Record, n)
		for i := 0; i < n; i++ {
			recs[i] = Record{
				Domain: addr.DomainID(doms[i]),
				VA:     addr.VA(vas[i]),
				Kind:   addr.AccessKind(kinds[i] % 3),
			}
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, r := range recs {
			if err := w.Write(r); err != nil {
				return false
			}
		}
		w.Flush()
		got, err := NewReader(&buf).ReadAll()
		if err != nil || len(got) != n {
			return false
		}
		for i := range got {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGeneratorsShape(t *testing.T) {
	g := NewGen(1, addr.BaseGeometry())
	seq := g.Sequential(1, 0x1000, 100, 8, 50)
	if len(seq) != 100 || seq[1].VA-seq[0].VA != 8 {
		t.Fatal("Sequential shape wrong")
	}
	ws := g.WorkingSet(1, addr.VA(1)<<32, 4, 1000, 30)
	for _, r := range ws {
		page := (uint64(r.VA) - 1<<32) / 4096
		if page >= 4 {
			t.Fatalf("working set escaped: page %d", page)
		}
	}
	z := g.Zipf(1, addr.VA(1)<<32, 64, 1000, 1.2, 0)
	counts := map[addr.VA]int{}
	for _, r := range z {
		counts[r.VA]++
	}
	// Zipf must concentrate: the most popular page gets far more than
	// the uniform share.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 1000/64*4 {
		t.Errorf("Zipf max page count %d not skewed", max)
	}
}

func TestSharedMixSwitchesAndSharing(t *testing.T) {
	g := NewGen(2, addr.BaseGeometry())
	cfg := DefaultSharedMix()
	recs := g.SharedMix(cfg)
	if len(recs) != cfg.Records {
		t.Fatalf("records = %d", len(recs))
	}
	domains := map[addr.DomainID]bool{}
	shared := 0
	for _, r := range recs {
		domains[r.Domain] = true
		if r.VA >= cfg.SharedBase && r.VA < cfg.PrivateBase {
			shared++
		}
	}
	if len(domains) != cfg.Domains {
		t.Fatalf("domains seen = %d", len(domains))
	}
	frac := 100 * shared / len(recs)
	if frac < cfg.SharedPercent/2 || frac > cfg.SharedPercent*2 {
		t.Errorf("shared fraction %d%% far from configured %d%%", frac, cfg.SharedPercent)
	}
}

func TestDriverOnAllMachines(t *testing.T) {
	g := NewGen(3, addr.BaseGeometry())
	recs := g.SharedMix(DefaultSharedMix())
	os := NewOpenOS(addr.BaseGeometry(), nil)
	machines := []machine.Machine{
		machine.MustPLB(machine.DefaultPLBConfig(), os),
		machine.NewPG(machine.DefaultPGConfig(), os),
		machine.NewConventional(machine.DefaultConvConfig(), os),
		machine.NewFlush(machine.DefaultConvConfig(), os),
	}
	for _, m := range machines {
		res, err := Run(m, recs)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if res.Records != len(recs) {
			t.Fatalf("%s: replayed %d", m.Name(), res.Records)
		}
		if res.Switches == 0 || res.Cycles == 0 {
			t.Fatalf("%s: degenerate result %+v", m.Name(), res)
		}
		if res.Counters[machine.CtrAccesses] != uint64(len(recs)) {
			t.Fatalf("%s: access counter %d", m.Name(), res.Counters[machine.CtrAccesses])
		}
	}
}

func TestOpenOSTranslationStable(t *testing.T) {
	os := NewOpenOS(addr.BaseGeometry(), nil)
	p1, _ := os.Translate(5)
	p2, _ := os.Translate(5)
	p3, _ := os.Translate(6)
	if p1 != p2 {
		t.Fatal("translation not stable")
	}
	if p3 == p1 {
		t.Fatal("distinct pages share a frame")
	}
	// Per-space walks duplicate the view but keep the same frame.
	pte1, _ := os.Walk(1, 5)
	pte2, _ := os.Walk(2, 5)
	if pte1.PFN != p1 || pte2.PFN != p1 {
		t.Fatal("per-space walk diverged from global translation")
	}
}

// Property: any trace over any domains/addresses replays on every machine
// under open authority without faults, with consistent access counters.
func TestReplayPropertyAllMachines(t *testing.T) {
	f := func(doms []uint8, pages []uint16, kinds []uint8) bool {
		n := len(doms)
		if len(pages) < n {
			n = len(pages)
		}
		if len(kinds) < n {
			n = len(kinds)
		}
		if n == 0 {
			return true
		}
		recs := make([]Record, n)
		for i := 0; i < n; i++ {
			recs[i] = Record{
				Domain: addr.DomainID(doms[i]%8) + 1,
				VA:     addr.VA(1)<<32 + addr.VA(pages[i])*4096,
				Kind:   addr.AccessKind(kinds[i] % 3),
			}
		}
		machines := []machine.Machine{
			machine.MustPLB(machine.DefaultPLBConfig(), NewOpenOS(addr.BaseGeometry(), nil)),
			machine.NewPG(machine.DefaultPGConfig(), NewOpenOS(addr.BaseGeometry(), nil)),
			machine.NewConventional(machine.DefaultConvConfig(), NewOpenOS(addr.BaseGeometry(), nil)),
			machine.NewFlush(machine.DefaultConvConfig(), NewOpenOS(addr.BaseGeometry(), nil)),
		}
		for _, m := range machines {
			res, err := Run(m, recs)
			if err != nil {
				return false
			}
			if res.Records != n || res.Counters[machine.CtrAccesses] != uint64(n) {
				return false
			}
			// No faults under open authority.
			if res.Counters[machine.CtrFaultProt] != 0 ||
				res.Counters[machine.CtrFaultUnmapped] != 0 ||
				res.Counters[machine.CtrFaultAddressing] != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
