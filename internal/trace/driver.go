package trace

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/cpu"
	"repro/internal/machine"
	"repro/internal/ptable"
)

// OpenOS is a permissive OS for trace-driven machine experiments: every
// referenced page is mapped on demand (one global translation) and every
// domain holds read-write-execute rights everywhere. With authority out
// of the picture, the measured traffic is pure structure behaviour
// (capacity, duplication, switch costs).
//
// OpenOS implements both machine.OS (single address space machines, one
// shared translation) and machine.MultiOS (conventional machines, one
// linear-table view per address space, duplicating the mapping per space
// exactly as a multiple-address-space OS must).
type OpenOS struct {
	geo      addr.Geometry
	nextPFN  addr.PFN
	trans    map[addr.VPN]addr.PFN
	groupOf  func(addr.VPN) addr.GroupID
	walks    map[addr.ASID]*ptable.LinearTable
	perSpace map[asidVPN]ptable.LinearPTE
}

type asidVPN struct {
	as  addr.ASID
	vpn addr.VPN
}

// NewOpenOS creates an OpenOS. groupOf assigns page-group identifiers to
// pages for the page-group machine (nil means every page is in the global
// group 0).
func NewOpenOS(geo addr.Geometry, groupOf func(addr.VPN) addr.GroupID) *OpenOS {
	return &OpenOS{
		geo:      geo,
		trans:    make(map[addr.VPN]addr.PFN),
		groupOf:  groupOf,
		perSpace: make(map[asidVPN]ptable.LinearPTE),
	}
}

// Translate implements machine.OS.
func (o *OpenOS) Translate(vpn addr.VPN) (addr.PFN, bool) {
	if pfn, ok := o.trans[vpn]; ok {
		return pfn, true
	}
	pfn := o.nextPFN
	o.nextPFN++
	o.trans[vpn] = pfn
	return pfn, true
}

// ResolveRights implements machine.OS: open authority, always cacheable.
func (o *OpenOS) ResolveRights(addr.DomainID, addr.VPN) (addr.Rights, bool, bool) {
	return addr.RWX, true, true
}

// PageInfo implements machine.OS.
func (o *OpenOS) PageInfo(vpn addr.VPN) (addr.GroupID, addr.Rights, bool) {
	g := addr.GlobalGroup
	if o.groupOf != nil {
		g = o.groupOf(vpn)
	}
	return g, addr.RWX, true
}

// DomainGroup implements machine.OS: every domain may use every group.
func (o *OpenOS) DomainGroup(addr.DomainID, addr.GroupID) (bool, bool) { return true, false }

// DomainGroups implements machine.OS. OpenOS cannot enumerate the groups
// a domain will use, so eager reload is unavailable (return nil).
func (o *OpenOS) DomainGroups(addr.DomainID) []machine.GroupAccess { return nil }

// Walk implements machine.MultiOS: each space maps each page privately to
// the same frame the global table would use (the conventional OS's
// duplicated view of shared memory).
func (o *OpenOS) Walk(as addr.ASID, vpn addr.VPN) (ptable.LinearPTE, bool) {
	key := asidVPN{as: as, vpn: vpn}
	if pte, ok := o.perSpace[key]; ok {
		return pte, true
	}
	pfn, _ := o.Translate(vpn)
	pte := ptable.LinearPTE{PFN: pfn, Rights: addr.RWX, Valid: true}
	o.perSpace[key] = pte
	return pte, true
}

var (
	_ machine.OS      = (*OpenOS)(nil)
	_ machine.MultiOS = (*OpenOS)(nil)
)

// Result is the outcome of replaying a trace.
type Result struct {
	// Records is the number of references replayed.
	Records int
	// Switches is the number of domain switches performed.
	Switches int
	// Cycles is the machine cycle total after the run.
	Cycles uint64
	// Counters is a snapshot of the machine counters after the run.
	Counters map[string]uint64
}

// Run replays records against m, switching domains whenever consecutive
// records differ. Faults are errors: trace experiments run with open
// authority, so nothing should fault.
func Run(m machine.Machine, records []Record) (Result, error) {
	res := Result{}
	cur := addr.DomainID(0)
	for i, r := range records {
		if r.Domain != cur {
			m.SwitchDomain(r.Domain)
			cur = r.Domain
			res.Switches++
		}
		out := m.Access(r.VA, r.Kind)
		if out.Fault != cpu.FaultNone {
			return res, fmt.Errorf("trace: record %d (%#x by %d): unexpected %v fault",
				i, uint64(r.VA), r.Domain, out.Fault)
		}
		res.Records++
	}
	res.Cycles = m.Cycles()
	res.Counters = m.Counters().Snapshot()
	return res, nil
}
