// Distributed shared virtual memory (Li) across four simulated nodes:
// every node is a full kernel+machine instance; a write-invalidate
// protocol driven by protection faults keeps one shared segment coherent.
// The single address space guarantees the segment has the same virtual
// addresses on every node, so pointers travel freely.
//
// The final scenario makes the interconnect lossy (5% drops) and crashes
// one node mid-run: coherence traffic rides a reliable-delivery layer,
// and the crashed node's pages come back from a stable checkpoint image.
package main

import (
	"fmt"
	"log"

	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/workload/dsm"
)

func main() {
	for _, pattern := range []struct {
		name        string
		partitioned bool
	}{
		{"uniform sharing (every node touches every page)", false},
		{"partitioned with 10% remote accesses", true},
	} {
		fmt.Printf("== %s ==\n", pattern.name)
		for _, m := range []kernel.Model{kernel.ModelDomainPage, kernel.ModelPageGroup} {
			cfg := dsm.DefaultConfig(m)
			cfg.Partitioned = pattern.partitioned
			rep, err := dsm.Run(cfg)
			if err != nil {
				log.Fatalf("%v: %v", m, err)
			}
			fmt.Printf("%s:\n", m)
			fmt.Printf("  read faults / write faults:  %d / %d\n", rep.ReadFaults, rep.WriteFaults)
			fmt.Printf("  invalidations:               %d\n", rep.Invalidations)
			fmt.Printf("  page transfers:              %d (%d KB over the wire)\n",
				rep.PageTransfers, rep.NetBytes/1024)
			fmt.Printf("  protection updates:          %d\n", rep.ProtUpdates)
			fmt.Printf("  network cycles:              %d\n", rep.NetCycles)
			fmt.Printf("  machine cycles (all nodes):  %d\n", rep.MachineCycles)
		}
		fmt.Println()
	}

	// Same four nodes, hostile conditions: 5% of messages vanish in
	// transit and node 2 dies halfway through, rebooting one round later.
	fmt.Println("== lossy network (5% drops) with a mid-run crash of node 2 ==")
	cfg := dsm.DefaultConfig(kernel.ModelDomainPage)
	cfg.Net.Faults = netsim.FaultPlan{Seed: 42, DropPercent: 5}
	cfg.CrashNode = 2
	cfg.CrashAtOp = cfg.OpsPerNode / 2
	rep, err := dsm.Run(cfg)
	if err != nil {
		log.Fatalf("faulty run: %v", err)
	}
	fmt.Printf("  messages dropped by the wire:  %d\n", rep.Drops)
	fmt.Printf("  retransmits / timeouts / acks: %d / %d / %d\n", rep.Retransmits, rep.Timeouts, rep.Acks)
	fmt.Printf("  reliability cycles:            %d (retransmit %d + timeout %d + ack %d)\n",
		rep.RetransCycles+rep.TimeoutCycles+rep.AckCycles,
		rep.RetransCycles, rep.TimeoutCycles, rep.AckCycles)
	fmt.Printf("  crash: %d pages flushed to the stable image, %d restored on reboot, %d served to peers\n",
		rep.CheckpointSaves, rep.RecoveredPages, rep.StoreFetches)
	fmt.Printf("  recovery cycles:               %d\n", rep.RecoveryCycles)
	fmt.Println()
	fmt.Println("coherence verified: every node observed the latest value of every written word,")
	fmt.Println("with and without message loss and the node failure")
}
