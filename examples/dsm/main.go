// Distributed shared virtual memory (Li) across four simulated nodes:
// every node is a full kernel+machine instance; a write-invalidate
// protocol driven by protection faults keeps one shared segment coherent.
// The single address space guarantees the segment has the same virtual
// addresses on every node, so pointers travel freely.
package main

import (
	"fmt"
	"log"

	"repro/internal/kernel"
	"repro/internal/workload/dsm"
)

func main() {
	for _, pattern := range []struct {
		name        string
		partitioned bool
	}{
		{"uniform sharing (every node touches every page)", false},
		{"partitioned with 10% remote accesses", true},
	} {
		fmt.Printf("== %s ==\n", pattern.name)
		for _, m := range []kernel.Model{kernel.ModelDomainPage, kernel.ModelPageGroup} {
			cfg := dsm.DefaultConfig(m)
			cfg.Partitioned = pattern.partitioned
			rep, err := dsm.Run(cfg)
			if err != nil {
				log.Fatalf("%v: %v", m, err)
			}
			fmt.Printf("%s:\n", m)
			fmt.Printf("  read faults / write faults:  %d / %d\n", rep.ReadFaults, rep.WriteFaults)
			fmt.Printf("  invalidations:               %d\n", rep.Invalidations)
			fmt.Printf("  page transfers:              %d (%d KB over the wire)\n",
				rep.PageTransfers, rep.NetBytes/1024)
			fmt.Printf("  protection updates:          %d\n", rep.ProtUpdates)
			fmt.Printf("  network cycles:              %d\n", rep.NetCycles)
			fmt.Printf("  machine cycles (all nodes):  %d\n", rep.MachineCycles)
		}
		fmt.Println()
	}
	fmt.Println("coherence verified: every node observed the latest value of every written word")
}
