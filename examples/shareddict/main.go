// A linked data structure shared by reference (Section 2.1): a chained
// hash dictionary lives entirely inside a shared segment — buckets,
// nodes, and the pointers between them are global virtual addresses — so
// a writer domain builds it and reader domains traverse it directly, with
// no marshalling, no copying, and no address translation fix-ups. The
// readers cannot corrupt it: they are attached read-only.
//
// This is the sharing style the paper argues single address spaces make
// natural: "virtual addresses (pointers) can be passed between domains,
// and linked data structures stored in the global address space are
// meaningful to any protection domain that can access them."
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/sasos"
)

// Dictionary layout inside the segment (all 64-bit words):
//
//	word 0:            bump-allocation pointer (next free VA)
//	words 1..nBuckets: bucket heads (VA of first node, 0 = empty)
//	nodes:             [next VA, key, value]
const (
	nBuckets  = 64
	nodeWords = 3
	hdrWords  = 1 + nBuckets
)

type dict struct {
	k   *sasos.Kernel
	seg *sasos.Segment
}

func (d *dict) bucketVA(h uint64) sasos.VA { return d.seg.Base() + sasos.VA(8*(1+h%nBuckets)) }

func hash(key uint64) uint64 {
	key ^= key >> 33
	key *= 0x9e3779b97f4a7c15
	return key
}

// insert is performed by a domain with write access.
func (d *dict) insert(w *sasos.Domain, key, val uint64) error {
	allocPtr := d.seg.Base()
	next, err := d.k.Load(w, allocPtr)
	if err != nil {
		return err
	}
	if next == 0 { // first insertion: heap starts after the header
		next = uint64(d.seg.Base()) + 8*hdrWords
	}
	node := sasos.VA(next)
	bucket := d.bucketVA(hash(key))
	head, err := d.k.Load(w, bucket)
	if err != nil {
		return err
	}
	for _, wr := range []struct {
		va sasos.VA
		v  uint64
	}{
		{node, head}, // node.next = old head
		{node + 8, key},
		{node + 16, val},
		{bucket, uint64(node)},                 // head = node
		{allocPtr, uint64(node) + 8*nodeWords}, // bump
	} {
		if err := d.k.Store(w, wr.va, wr.v); err != nil {
			return err
		}
	}
	return nil
}

// lookup walks the chain pointers directly — any attached domain can.
func (d *dict) lookup(r *sasos.Domain, key uint64) (uint64, bool, error) {
	cur, err := d.k.Load(r, d.bucketVA(hash(key)))
	if err != nil {
		return 0, false, err
	}
	for cur != 0 {
		k, err := d.k.Load(r, sasos.VA(cur)+8)
		if err != nil {
			return 0, false, err
		}
		if k == key {
			v, err := d.k.Load(r, sasos.VA(cur)+16)
			return v, true, err
		}
		cur, err = d.k.Load(r, sasos.VA(cur))
		if err != nil {
			return 0, false, err
		}
	}
	return 0, false, nil
}

func main() {
	k := sasos.New(sasos.DefaultConfig(sasos.ModelDomainPage))
	writer := k.CreateDomain()
	readerA := k.CreateDomain()
	readerB := k.CreateDomain()

	seg := k.CreateSegment(16, sasos.SegmentOptions{Name: "shared-dict"})
	k.Attach(writer, seg, sasos.RW)
	k.Attach(readerA, seg, sasos.Read)
	k.Attach(readerB, seg, sasos.Read)
	d := &dict{k: k, seg: seg}

	const n = 500
	for i := uint64(0); i < n; i++ {
		if err := d.insert(writer, i*7, i*i); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("writer built a %d-entry chained dictionary in the shared segment\n", n)

	// Both readers traverse the same pointers, in their own domains.
	for _, r := range []*sasos.Domain{readerA, readerB} {
		for i := uint64(0); i < n; i++ {
			v, ok, err := d.lookup(r, i*7)
			if err != nil {
				log.Fatal(err)
			}
			if !ok || v != i*i {
				log.Fatalf("reader %d: key %d -> %d,%v", r.ID, i*7, v, ok)
			}
		}
		if _, ok, _ := d.lookup(r, 99999); ok {
			log.Fatal("phantom key")
		}
	}
	fmt.Println("both readers resolved every key by chasing shared pointers")

	// Protection still holds: a reader cannot corrupt the structure.
	if err := k.Touch(readerA, seg.Base(), sasos.Store); errors.Is(err, sasos.ErrProtection) {
		fmt.Println("reader write correctly denied")
	} else {
		log.Fatalf("protection hole: %v", err)
	}

	mc := k.Machine().Counters()
	fmt.Printf("\nPLB: %d refills for 3 domains x %d pages; machine cycles %d\n",
		mc.Get("trap.plb_refill"), seg.NumPages(), k.Machine().Cycles())
}
