// Concurrent garbage collection (Appel-Ellis-Li) on both protection
// models: the mutator loses access to to-space at each flip and faults
// pages in as the collector scans them. The run verifies the object graph
// survives collection, then compares the protection traffic of the PLB
// and page-group systems.
package main

import (
	"fmt"
	"log"

	"repro/internal/kernel"
	"repro/internal/workload/gc"
)

func main() {
	cfg := gc.DefaultConfig()
	cfg.Objects = 4096
	cfg.GCs = 3
	cfg.MutatorOps = 2000

	fmt.Printf("heap: %d objects, %d roots, %d collections\n\n", cfg.Objects, cfg.Roots, cfg.GCs)
	for _, m := range []kernel.Model{kernel.ModelDomainPage, kernel.ModelPageGroup} {
		k := kernel.New(kernel.DefaultConfig(m))
		rep, err := gc.Run(k, cfg)
		if err != nil {
			log.Fatalf("%v: %v", m, err)
		}
		fmt.Printf("%s:\n", m)
		fmt.Printf("  live objects (verified):        %d\n", rep.LiveObjects)
		fmt.Printf("  objects copied:                 %d\n", rep.ObjectsCopied)
		fmt.Printf("  mutator faults on unscanned:    %d\n", rep.ScanFaults)
		fmt.Printf("  pages scanned:                  %d\n", rep.PagesScanned)
		fmt.Printf("  flip protection cycles:         %d\n", rep.FlipProtCycles)
		fmt.Printf("  machine cycles:                 %d\n", rep.MachineCycles)
		fmt.Printf("  kernel cycles:                  %d\n\n", rep.KernelCycles)
	}
}
