// Transactional virtual memory in the style of the IBM 801 and Camelot:
// transactions run in separate protection domains, acquire page locks by
// faulting, and release them at commit. The page-group model must juggle
// pages between lock groups (Section 4.1.2 of the paper); the domain-page
// model updates single PLB entries.
package main

import (
	"fmt"
	"log"

	"repro/internal/kernel"
	"repro/internal/workload/txn"
)

func main() {
	for _, contention := range []struct {
		name string
		hot  int
	}{
		{"low contention (uniform page access)", 0},
		{"high contention (60% of ops on 2 hot pages)", 60},
	} {
		fmt.Printf("== %s ==\n", contention.name)
		for _, m := range []kernel.Model{kernel.ModelDomainPage, kernel.ModelPageGroup} {
			k := kernel.New(kernel.DefaultConfig(m))
			cfg := txn.DefaultConfig(m)
			cfg.HotPercent = contention.hot
			rep, err := txn.Run(k, cfg)
			if err != nil {
				log.Fatalf("%v: %v", m, err)
			}
			fmt.Printf("%s:\n", m)
			fmt.Printf("  commits / aborts:            %d / %d\n", rep.Commits, rep.Aborts)
			fmt.Printf("  read / write locks granted:  %d / %d\n", rep.ReadLocks, rep.WriteLocks)
			fmt.Printf("  commit-time releases:        %d\n", rep.CommitReleases)
			fmt.Printf("  lock groups created:         %d\n", rep.GroupsCreated)
			fmt.Printf("  page moves between groups:   %d\n", rep.PageMoves)
			fmt.Printf("  committed increments:        %d (audited)\n", rep.CommittedIncrements)
			fmt.Printf("  machine cycles:              %d\n", rep.MachineCycles)
		}
		fmt.Println()
	}
}
