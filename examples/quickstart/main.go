// Quickstart: build a single address space system with a PLB machine,
// share a segment between two protection domains, and demonstrate the
// core properties — context-independent pointers, per-domain rights, and
// user-level fault handling.
package main

import (
	"fmt"
	"log"

	"repro/sasos"
)

func main() {
	k := sasos.New(sasos.DefaultConfig(sasos.ModelDomainPage))

	// Two protection domains in the one global address space.
	producer := k.CreateDomain()
	consumer := k.CreateDomain()

	// A shared segment: the producer writes, the consumer reads.
	shared := k.CreateSegment(4, sasos.SegmentOptions{Name: "shared-buffer"})
	k.Attach(producer, shared, sasos.RW)
	k.Attach(consumer, shared, sasos.Read)

	// The producer stores a *pointer* into the shared segment. In a
	// single address space the pointer means the same thing to every
	// domain — no marshaling, no translation.
	target := shared.PageVA(2)
	if err := k.Store(producer, shared.Base(), uint64(target)); err != nil {
		log.Fatal(err)
	}
	if err := k.Store(producer, target, 0xCAFE); err != nil {
		log.Fatal(err)
	}

	// The consumer loads the pointer and dereferences it directly.
	ptr, err := k.Load(consumer, shared.Base())
	if err != nil {
		log.Fatal(err)
	}
	val, err := k.Load(consumer, sasos.VA(ptr))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("consumer followed pointer %#x and read %#x\n", ptr, val)

	// Protection still applies: the consumer cannot write.
	if err := k.Store(consumer, sasos.VA(ptr), 1); err != nil {
		fmt.Printf("consumer write correctly denied: %v\n", err)
	}

	// A guarded segment grants write access lazily through a user-level
	// fault handler (the mechanism GC, DSM, transactions and
	// checkpointing are built on).
	grants := 0
	guarded := k.CreateSegment(4, sasos.SegmentOptions{
		Name: "guarded",
		Handler: func(f sasos.Fault) error {
			grants++
			fmt.Printf("fault: domain %d %v at %#x -> granting rw\n",
				f.Domain.ID, f.Kind, uint64(f.VA))
			return f.K.SetPageRights(f.Domain, f.VA, sasos.RW)
		},
	})
	k.Attach(producer, guarded, sasos.None)
	if err := k.Store(producer, guarded.Base(), 7); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("guarded store succeeded after %d fault(s)\n", grants)

	fmt.Printf("\nmachine: %s, cycles: %d\nhardware counters:\n%s",
		k.Machine().Name(), k.Machine().Cycles(), k.Machine().Counters())
}
