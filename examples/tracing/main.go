// Trace-driven comparison: generate one multiprogrammed reference stream
// and replay it on all four machine organizations — the PLB machine, the
// PA-RISC page-group machine, a conventional ASID-tagged machine, and a
// flush-on-switch machine — to see how each one's structures behave under
// identical load.
package main

import (
	"fmt"
	"log"

	"repro/internal/addr"
	"repro/internal/machine"
	"repro/internal/trace"
)

func main() {
	cfg := trace.DefaultSharedMix()
	cfg.Records = 50000
	recs := trace.NewGen(7, addr.BaseGeometry()).SharedMix(cfg)
	fmt.Printf("trace: %d records, %d domains, quantum %d, %d%% shared\n\n",
		len(recs), cfg.Domains, cfg.Quantum, cfg.SharedPercent)

	openOS := func() *trace.OpenOS { return trace.NewOpenOS(addr.BaseGeometry(), nil) }
	machines := []machine.Machine{
		machine.MustPLB(machine.DefaultPLBConfig(), openOS()),
		machine.NewPG(machine.DefaultPGConfig(), openOS()),
		machine.NewConventional(machine.DefaultConvConfig(), openOS()),
		machine.NewFlush(machine.DefaultConvConfig(), openOS()),
	}
	fmt.Printf("%-14s %12s %14s %14s %16s\n", "machine", "cycles", "cycles/access", "switch cycles", "refill traps")
	for _, m := range machines {
		res, err := trace.Run(m, recs)
		if err != nil {
			log.Fatalf("%s: %v", m.Name(), err)
		}
		refills := res.Counters[machine.CtrTrapPLBRefill] +
			res.Counters[machine.CtrTrapPGRefill] +
			res.Counters[machine.CtrTrapTLBRefill]
		fmt.Printf("%-14s %12d %14.3f %14d %16d\n",
			m.Name(), res.Cycles, float64(res.Cycles)/float64(res.Records),
			res.Counters[machine.CtrSwitchCycles], refills)
	}
}
