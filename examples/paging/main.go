// Memory overcommit: a working set four times physical memory, kept
// alive by the kernel's page daemon (FIFO eviction on frame exhaustion)
// over two backing stores — the simulated disk, and Appel & Li's
// compressed in-memory store (Table 1 rows 13-14) — with the protection
// maintenance of every page-out (TLB purge, cache flush) accounted.
package main

import (
	"fmt"
	"log"

	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/sasos"
)

// compressedPager adapts the compressed store to the kernel's Pager.
type compressedPager struct {
	k     *sasos.Kernel
	store *mem.CompressedStore
}

func (p *compressedPager) Out(vpn sasos.VPN, data []byte) error {
	if err := p.store.Put(uint64(vpn), data); err != nil {
		return err
	}
	p.k.Charge(uint64(len(data))) // 1 cycle/byte compression cost
	return nil
}

func (p *compressedPager) In(vpn sasos.VPN) ([]byte, error) {
	data, err := p.store.Get(uint64(vpn))
	if err != nil {
		return nil, err
	}
	p.k.Charge(uint64(len(data)))
	return data, nil
}

func run(name string, makePager func(*sasos.Kernel) sasos.Pager) {
	cfg := kernel.DefaultConfig(sasos.ModelDomainPage)
	cfg.Frames = 32
	cfg.AutoEvict = true
	k := sasos.New(cfg)
	if makePager != nil {
		k.SetPager(makePager(k))
	}
	app := k.CreateDomain()
	seg := k.CreateSegment(128, sasos.SegmentOptions{Name: "big-heap"}) // 4x memory
	k.Attach(app, seg, sasos.RW)

	// Touch the whole segment twice; verify every tag survives paging.
	for pass := 0; pass < 2; pass++ {
		for p := uint64(0); p < 128; p++ {
			if pass == 0 {
				if err := k.Store(app, seg.PageVA(p), p^0xABCD); err != nil {
					log.Fatal(err)
				}
			} else {
				v, err := k.Load(app, seg.PageVA(p))
				if err != nil {
					log.Fatal(err)
				}
				if v != p^0xABCD {
					log.Fatalf("page %d corrupted: %#x", p, v)
				}
			}
		}
	}
	fmt.Printf("%-24s evictions=%-5d pageins=%-5d frames<=%d  kernel cycles=%d\n",
		name,
		k.Counters().Get("kernel.auto_evictions"),
		k.Counters().Get("kernel.pageins"),
		k.Memory().MaxFramesUsed(),
		k.Cycles())
}

func main() {
	fmt.Println("128-page working set in 32 frames, page daemon enabled; all data verified")
	run("disk pager", nil)
	run("compressed-memory pager", func(k *sasos.Kernel) sasos.Pager {
		return &compressedPager{k: k, store: mem.NewCompressedStore(1)}
	})
}
