// Execution-keyed protection (the Okamoto-style extension the paper's
// Section 5 describes): a shared library's private state is accessible
// exactly while the library's own code executes, in whichever protection
// domain calls it — protection follows the code, not the caller.
//
// The scenario: an allocator library with a private free-list segment.
// Any client may call into the library (and the library then manipulates
// its free list on the client's behalf), but no client can corrupt the
// free list directly.
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/sasos"
)

func main() {
	k := sasos.New(sasos.DefaultConfig(sasos.ModelDomainPage))

	libCode := k.CreateSegment(4, sasos.SegmentOptions{Name: "liballoc-code"})
	libState := k.CreateSegment(4, sasos.SegmentOptions{Name: "liballoc-freelist"})
	// Executors of the library's code may write its private state.
	if err := k.GrantExecutor(libState, libCode, sasos.RW); err != nil {
		log.Fatal(err)
	}

	clientA := k.CreateDomain()
	clientB := k.CreateDomain()
	for _, c := range []*sasos.Domain{clientA, clientB} {
		k.Attach(c, libCode, sasos.RX) // everyone may call the library
	}

	// libCall simulates a call into the library: the caller's execution
	// site moves into the library code, the library does its work on the
	// private state, and control returns.
	libCall := func(d *sasos.Domain, work func() error) error {
		if err := k.SetExecutionSite(d, libCode.Base()); err != nil {
			return err
		}
		defer k.SetExecutionSite(d, 0) // return to application code
		return work()
	}

	// Client A allocates: the library pushes a record onto its free list.
	err := libCall(clientA, func() error {
		return k.Store(clientA, libState.Base(), 0x1000_0001)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("client A called liballoc: free-list updated under library code")

	// Client B calls too — same library state, different domain.
	err = libCall(clientB, func() error {
		v, err := k.Load(clientB, libState.Base())
		if err != nil {
			return err
		}
		fmt.Printf("client B, inside the library, reads the free list head: %#x\n", v)
		return k.Store(clientB, libState.Base(), v+1)
	})
	if err != nil {
		log.Fatal(err)
	}

	// Outside the library, the state is untouchable — even for clients
	// that were just inside it.
	if err := k.Touch(clientA, libState.Base(), sasos.Load); errors.Is(err, sasos.ErrProtection) {
		fmt.Println("client A outside the library: free list correctly inaccessible")
	} else {
		log.Fatalf("protection hole: %v", err)
	}

	fmt.Printf("\nexec grants: %d, site changes: %d, purges on site change: %d\n",
		k.Counters().Get("kernel.exec_grants"),
		k.Counters().Get("kernel.exec_site_changes"),
		k.Counters().Get("kernel.exec_site_purges"))
}
