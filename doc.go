// Package repro is a reproduction of "Architectural Support for Single
// Address Space Operating Systems" (Koldinger, Chase & Eggers, ASPLOS
// 1992): a memory-system simulator and Opal-style SASOS kernel
// implementing both protection models the paper compares — the Protection
// Lookaside Buffer (domain-page model) and the PA-RISC page-group model —
// together with the six application workloads of the paper's Table 1 and
// the experiment harness that regenerates every quantified claim.
//
// Public API: repro/sasos. Experiment harness: cmd/tablegen. Design and
// measured results: DESIGN.md and EXPERIMENTS.md.
package repro
